/**
 * @file
 * copra_lint: the project's determinism-contract static analyzer.
 *
 * A deliberately small token-level scanner (no libclang) that enforces
 * the invariants PR 1 and PR 2 only checked dynamically: no hidden
 * entropy sources in simulation code, no unsanctioned mutable global
 * state, no hash-order-dependent iteration feeding results, and header
 * hygiene. See DESIGN.md §9 for the rule list and suppression policy.
 *
 * The analysis is honest about being lexical: it tokenizes after
 * stripping comments, strings, and preprocessor lines, then pattern
 * matches. That catches every construct this codebase actually uses;
 * the planted corpus under tests/lint_corpus/ pins the behaviour.
 */

#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

namespace copra::lint {

/** One lexical token: an identifier, number, or punctuator. */
struct Token
{
    std::string text;
    int line = 0;
    int col = 0; ///< 1-based byte column of the token's first character
};

/** A parsed copra-lint directive or corpus expectation comment. */
struct Annotation
{
    enum class Kind {
        Allow,            ///< the allow(rule) -- reason directive
        SanctionedGlobal, ///< the sanctioned-global(reason) directive
        Expect,           ///< a corpus-file expectation marker
        Malformed,        ///< a directive the parser rejects
    };

    Kind kind = Kind::Malformed;
    std::string rule;   ///< rule name for Allow/Expect
    std::string reason; ///< mandatory justification text
    int line = 0;       ///< line the comment appears on
    std::string error;  ///< parser diagnostic for Malformed
};

/** One #include directive with its location. */
struct Include
{
    std::string target; ///< include spelling, verbatim
    int line = 0;
};

/** Lexed view of one source file, input to every rule. */
struct FileScan
{
    std::string rel; ///< repo-relative path, forward slashes
    std::vector<std::string> lines;
    std::vector<Token> tokens; ///< comments/strings/preproc stripped
    std::vector<Annotation> annotations;
    std::set<std::string> includes; ///< #include targets, verbatim
    std::vector<Include> includeList; ///< same targets, with lines
    bool pragmaOnce = false;        ///< has a #pragma once line
    int guardLine = 0;              ///< line of a legacy ifndef guard, or 0
};

/** One rule violation. */
struct Finding
{
    std::string rel;
    int line = 0;
    std::string rule;
    std::string message;
    int col = 1; ///< 1-based column (1 when the rule is line-granular)

    /** Stable machine identifier, e.g. "copra.mutable-global". */
    std::string ruleId() const { return "copra." + rule; }

    bool operator<(const Finding &o) const
    {
        if (rel != o.rel)
            return rel < o.rel;
        if (line != o.line)
            return line < o.line;
        if (rule != o.rule)
            return rule < o.rule;
        if (col != o.col)
            return col < o.col;
        return message < o.message;
    }

    /** Identical findings (multi-include headers, overlapping passes)
     *  deduplicate before emit so --json/SARIF output is stable. */
    bool operator==(const Finding &o) const
    {
        return rel == o.rel && line == o.line && rule == o.rule &&
            col == o.col && message == o.message;
    }
};

/** Every rule copra_lint knows, with its one-line contract. */
std::vector<std::pair<std::string, std::string>> ruleCatalog();

/** True iff `rule` is in the catalog. */
bool knownRule(const std::string &rule);

/** Lex `content` as the file at repo-relative path `rel`. */
FileScan scanSource(const std::string &rel, const std::string &content);

/**
 * Unordered-container knowledge harvested from declarations: variable
 * and accessor names whose type involves std::unordered_map/set.
 * Collected from a file's own tokens plus its directly included
 * project headers, so `for (x : ledger.table())` is visible from a
 * .cc that only includes sim/ledger.hpp.
 */
struct UnorderedDecls
{
    std::set<std::string> variables;
    std::set<std::string> accessors;
};

/** Harvest unordered declarations from one scan. */
void collectUnorderedDecls(const FileScan &scan, UnorderedDecls &out);

/**
 * Run every applicable rule over one file. `extra` carries unordered
 * declarations harvested from included headers (may be empty).
 * Suppressed findings are dropped; malformed annotations surface as
 * `annotation` findings.
 */
std::vector<Finding> runRules(const FileScan &scan,
                              const UnorderedDecls &extra);

/**
 * Drop findings covered by an allow()/sanctioned-global annotation in
 * `scan` (own line or the next). `annotation` findings are immune.
 */
std::vector<Finding> applySuppressions(const FileScan &scan,
                                       std::vector<Finding> findings);

// --- State-contract semantic pass (DESIGN.md §14) -------------------

/** One parsed member field of a class definition. */
struct SemaField
{
    std::string name;
    int line = 0;
    int col = 1;
};

/** Which COPRA_*_FIELDS list a member name was declared in. */
enum class FieldList
{
    State,
    Config,
    Transient,
};

/** One name appearing in a COPRA_*_FIELDS declaration. */
struct SemaListEntry
{
    std::string name;
    FieldList list = FieldList::State;
    int line = 0;
    int col = 1;
};

/** One method body bound to a class — in-class or out-of-line. */
struct SemaBody
{
    std::string method;
    size_t scanIndex = 0; ///< index into the scans the model was built from
    size_t beginTok = 0;  ///< token index of the opening `{`
    size_t endTok = 0;    ///< token index of the matching `}`
    size_t headTok = 0;   ///< first token of the definition head
};

/**
 * Lightweight model of one class definition: name, bases, parsed
 * member fields, declared methods, COPRA_*_FIELDS declarations, and
 * every method body the scanned set binds to it (including bodies
 * defined out of line in other translation units).
 */
struct SemaClass
{
    std::string name;
    std::string rel; ///< file the definition lives in
    int line = 0;
    size_t scanIndex = 0;
    std::vector<std::string> bases; ///< unqualified base-class names
    std::vector<SemaField> fields;
    std::set<std::string> methods;
    std::vector<SemaListEntry> listed;
    bool hasStateFields = false;
    bool hasConfigFields = false;
    bool hasTransientFields = false;
    std::vector<SemaBody> bodies;
    size_t bodyBegin = 0; ///< first token inside the class braces
    size_t bodyEnd = 0;   ///< token index of the closing `}`
};

/** Cross-TU symbol table over one set of scans. */
struct SemaModel
{
    /** Class definitions by name; first definition wins on collision. */
    std::map<std::string, SemaClass> classes;
};

/** Does `cls` (a name in `model`) transitively derive from `base`? */
bool derivesFrom(const SemaModel &model, const std::string &cls,
                 const std::string &base);

/** Does `cls` (a name in `model`) transitively derive from Predictor? */
bool derivesFromPredictor(const SemaModel &model, const std::string &cls);

/**
 * Build the symbol table: pass 1 collects class definitions (fields,
 * methods, field-list declarations, inline bodies); pass 2 binds
 * out-of-line `Class::method(...) { ... }` bodies from every scan.
 */
SemaModel buildSemaModel(const std::vector<FileScan> &scans);

/**
 * The state-contract audit (rules state-decl, state-coverage,
 * state-mutation) over every Predictor-derived class defined under
 * src/predictor/. Suppressions from the file owning each finding
 * apply; results are unsorted (callers sort the merged set).
 */
std::vector<Finding> runSemaRules(const SemaModel &model,
                                  const std::vector<FileScan> &scans);

// --- Hot-path call graph (DESIGN.md §15) ----------------------------

/** One function definition the call-graph pass knows about. */
struct CgFunction
{
    std::string cls;  ///< owning class name; empty for free functions
    std::string name; ///< unqualified function name
    size_t scanIndex = 0;
    size_t headTok = 0;  ///< first token of the definition head
    size_t beginTok = 0; ///< token index of the opening `{`
    size_t endTok = 0;   ///< token index of the matching `}`
    int line = 0;        ///< line of the definition head
    bool hasNoexcept = false; ///< `noexcept` appears in the head
    bool eligible = false;    ///< may join the hot region (src/, not check)

    /** Display label, e.g. "TwoLevel::predictUpdateSoa" or "runLoop". */
    std::string label() const
    {
        return cls.empty() ? name : cls + "::" + name;
    }
};

/** One COPRA_HOT root annotation, as written in the source. */
struct HotMark
{
    std::string cls;    ///< enclosing class; empty for free functions
    std::string method; ///< annotated function name
    std::string rel;    ///< file the annotation appears in
    int line = 0;
    bool hasNoexcept = false; ///< `noexcept` in the annotated statement
};

/**
 * The cross-TU function symbol table and hot-region closure: every
 * method body from the sema model plus every namespace-scope free
 * function definition, the COPRA_HOT root marks, and — after
 * buildCallGraph — the reachable hot region with one provenance chain
 * per member ("sim::runLoop -> Predictor::predictUpdateSoa -> ...").
 */
struct CallGraph
{
    std::vector<CgFunction> functions;
    std::vector<HotMark> marks;
    std::vector<char> hot;          ///< parallel to functions: in region?
    std::vector<std::string> hotVia; ///< provenance chain per hot function
    std::vector<char> markBound; ///< parallel to marks: bound ≥1 function?
};

/**
 * Build the function table, bind COPRA_HOT marks (a mark on a class
 * method roots every overriding body in derived classes; a mark on a
 * free function roots every definition of that name), and compute the
 * reachable hot region by resolving calls through the class table.
 * Bodies under src/check/ and outside src/ never join the region —
 * reference models and harnesses are clarity-first by design.
 */
CallGraph buildCallGraph(const SemaModel &model,
                         const std::vector<FileScan> &scans);

/**
 * The hot-path discipline rules over the hot region: hot-alloc,
 * hot-lock, hot-throw (including missing noexcept), hot-io, and
 * hot-unresolved for calls the lexical resolver cannot bind.
 * Suppressions from the file owning each finding apply; results are
 * unsorted (callers sort the merged set).
 */
std::vector<Finding> runCallGraphRules(const CallGraph &cg,
                                       const SemaModel &model,
                                       const std::vector<FileScan> &scans);

/**
 * Render docs/HOT_PATH.md: the declared roots and, per
 * Predictor-derived class under src/predictor/, the hot functions its
 * prediction path reaches. Drift-gated by the hot_path_doc_drift test.
 */
std::string renderHotPathDoc(const CallGraph &cg, const SemaModel &model,
                             const std::vector<FileScan> &scans);

/**
 * Display column of 1-based byte offset `byteCol` in `line`: UTF-8
 * continuation bytes do not advance the column, and a tab advances to
 * the next 8-wide tab stop (what editors and SARIF viewers show for
 * tab-indented lines). SARIF and --json emit display columns, never
 * raw byte offsets.
 */
int displayColumn(const std::string &line, int byteCol);

// --- Module layering (DESIGN.md §10) --------------------------------

/**
 * Module of a repo-relative path: "util", "trace", "workload",
 * "predictor", "sim", "core", "check" for src/<module>/...; "tools",
 * "bench", "tests", "examples" for the sink trees; "" when the path
 * belongs to no declared module.
 */
std::string moduleOf(const std::string &rel);

/**
 * Module an include spelling points at, resolved lexically:
 * "sim/driver.hpp" -> "sim", "copra_lint/lint.hpp" -> "tools",
 * "" for system headers and other non-module includes.
 */
std::string includeModule(const std::string &target);

/**
 * True when module `from` may depend on module `to` under the declared
 * DAG: util -> trace -> {workload, predictor} -> sim -> core -> check,
 * with tools/bench/tests/examples as sinks that may depend on
 * anything. Self-dependency is always legal; unknown modules are never
 * constrained.
 */
bool moduleAllowed(const std::string &from, const std::string &to);

/**
 * The file-level include graph of one lint run: edges from each
 * scanned file to the scanned files its includes resolve to (system
 * headers and unscanned files do not appear).
 */
struct IncludeGraph
{
    /** Adjacency: rel path -> resolved targets, include order. */
    std::map<std::string, std::vector<Include>> edges;
};

/** Build the include graph over `scans` (targets resolved to rels). */
IncludeGraph buildIncludeGraph(const std::vector<FileScan> &scans);

/**
 * Graph-level rules, run once per tree: `include-cycle` for file-level
 * include cycles, and transitive `layering` ("include-through")
 * findings for files whose include closure reaches a module their own
 * module may not depend on through individually legal edges.
 * Suppressions from the owning file apply; results are sorted.
 */
std::vector<Finding> runGraphRules(const std::vector<FileScan> &scans,
                                   const IncludeGraph &graph);

/** Render the include graph as Graphviz DOT, module-clustered;
 *  DAG-violating edges are drawn red. Files in `hotFiles` (those
 *  containing hot-region bodies) are filled as the hot overlay. */
std::string graphToDot(const IncludeGraph &graph,
                       const std::set<std::string> &hotFiles = {});

/** Everything lintTreeFull learned about one tree. */
struct TreeLint
{
    std::vector<Finding> findings;
    IncludeGraph graph;
    /** Missing or unreadable input paths — the caller must treat any
     *  entry as a hard error, not a clean run. */
    std::vector<std::string> errors;
    /** Files containing at least one hot-region body (--graph-dot
     *  overlay). */
    std::set<std::string> hotFiles;
    /** The regenerated docs/HOT_PATH.md content for this tree. */
    std::string hotPathDoc;
};

/**
 * Lint a source tree rooted at `root`, restricted to `paths`
 * (root-relative directories or files). Resolves project includes so
 * cross-header unordered knowledge is available, builds the include
 * graph, and runs both the per-file and the graph-level rules.
 * Results are sorted.
 */
TreeLint lintTreeFull(const std::string &root,
                      const std::vector<std::string> &paths);

/** lintTreeFull, findings only (kept for existing callers; path
 *  errors surface through lintTreeFull). */
std::vector<Finding> lintTree(const std::string &root,
                              const std::vector<std::string> &paths);

/**
 * Self-test over a planted-violation corpus: every expectation
 * marker must produce exactly one finding of that rule on its line,
 * no unexpected findings may appear, every rule must both fire and be
 * exercised in suppressed form somewhere in the corpus. Returns true
 * on success; mismatch details are appended to `report`.
 */
bool selfTest(const std::string &root, const std::string &corpus,
              std::string &report);

} // namespace copra::lint
