/**
 * @file
 * copra_lint: the project's determinism-contract static analyzer.
 *
 * A deliberately small token-level scanner (no libclang) that enforces
 * the invariants PR 1 and PR 2 only checked dynamically: no hidden
 * entropy sources in simulation code, no unsanctioned mutable global
 * state, no hash-order-dependent iteration feeding results, and header
 * hygiene. See DESIGN.md §9 for the rule list and suppression policy.
 *
 * The analysis is honest about being lexical: it tokenizes after
 * stripping comments, strings, and preprocessor lines, then pattern
 * matches. That catches every construct this codebase actually uses;
 * the planted corpus under tests/lint_corpus/ pins the behaviour.
 */

#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

namespace copra::lint {

/** One lexical token: an identifier, number, or punctuator. */
struct Token
{
    std::string text;
    int line = 0;
};

/** A parsed copra-lint directive or corpus expectation comment. */
struct Annotation
{
    enum class Kind {
        Allow,            ///< the allow(rule) -- reason directive
        SanctionedGlobal, ///< the sanctioned-global(reason) directive
        Expect,           ///< a corpus-file expectation marker
        Malformed,        ///< a directive the parser rejects
    };

    Kind kind = Kind::Malformed;
    std::string rule;   ///< rule name for Allow/Expect
    std::string reason; ///< mandatory justification text
    int line = 0;       ///< line the comment appears on
    std::string error;  ///< parser diagnostic for Malformed
};

/** Lexed view of one source file, input to every rule. */
struct FileScan
{
    std::string rel; ///< repo-relative path, forward slashes
    std::vector<std::string> lines;
    std::vector<Token> tokens; ///< comments/strings/preproc stripped
    std::vector<Annotation> annotations;
    std::set<std::string> includes; ///< #include targets, verbatim
    bool pragmaOnce = false;        ///< has a #pragma once line
    int guardLine = 0;              ///< line of a legacy ifndef guard, or 0
};

/** One rule violation. */
struct Finding
{
    std::string rel;
    int line = 0;
    std::string rule;
    std::string message;

    bool operator<(const Finding &o) const
    {
        if (rel != o.rel)
            return rel < o.rel;
        if (line != o.line)
            return line < o.line;
        return rule < o.rule;
    }
};

/** Every rule copra_lint knows, with its one-line contract. */
std::vector<std::pair<std::string, std::string>> ruleCatalog();

/** True iff `rule` is in the catalog. */
bool knownRule(const std::string &rule);

/** Lex `content` as the file at repo-relative path `rel`. */
FileScan scanSource(const std::string &rel, const std::string &content);

/**
 * Unordered-container knowledge harvested from declarations: variable
 * and accessor names whose type involves std::unordered_map/set.
 * Collected from a file's own tokens plus its directly included
 * project headers, so `for (x : ledger.table())` is visible from a
 * .cc that only includes sim/ledger.hpp.
 */
struct UnorderedDecls
{
    std::set<std::string> variables;
    std::set<std::string> accessors;
};

/** Harvest unordered declarations from one scan. */
void collectUnorderedDecls(const FileScan &scan, UnorderedDecls &out);

/**
 * Run every applicable rule over one file. `extra` carries unordered
 * declarations harvested from included headers (may be empty).
 * Suppressed findings are dropped; malformed annotations surface as
 * `annotation` findings.
 */
std::vector<Finding> runRules(const FileScan &scan,
                              const UnorderedDecls &extra);

/**
 * Lint a source tree rooted at `root`, restricted to `paths`
 * (root-relative directories or files). Resolves project includes so
 * cross-header unordered knowledge is available. Results are sorted.
 */
std::vector<Finding> lintTree(const std::string &root,
                              const std::vector<std::string> &paths);

/**
 * Self-test over a planted-violation corpus: every expectation
 * marker must produce exactly one finding of that rule on its line,
 * no unexpected findings may appear, every rule must both fire and be
 * exercised in suppressed form somewhere in the corpus. Returns true
 * on success; mismatch details are appended to `report`.
 */
bool selfTest(const std::string &root, const std::string &corpus,
              std::string &report);

} // namespace copra::lint
