/**
 * @file
 * Module-layering analysis for copra_lint: the declared module DAG,
 * the file-level include graph, cycle detection, transitive
 * "include-through" findings, and the Graphviz dump. See DESIGN.md §10
 * for the DAG rationale and the reading guide for the diagnostics.
 *
 * The split from rules.cc is deliberate: everything here consumes a
 * whole tree of FileScans at once, while rules.cc stays a pure
 * one-file-at-a-time engine (plus the tree driver that composes both).
 */

#include "copra_lint/lint.hpp"

#include <algorithm>
#include <deque>
#include <functional>
#include <sstream>

namespace copra::lint {

namespace {

/**
 * The declared module DAG: module -> modules it may depend on.
 * Self-dependency is implicit. workload and predictor are siblings —
 * programs know nothing about predictors and vice versa; only sim and
 * above compose them. sim sits below core (core orchestrates
 * experiments over sim's driver), and check caps the stack because the
 * differential harness needs to see everything it cross-checks.
 */
const std::map<std::string, std::set<std::string>> kModuleDeps = {
    {"util", {}},
    // obs sits directly above util (it reuses Histogram and the sync
    // primitives) and below everything instrumented; util itself emits
    // telemetry only through the function-pointer seam in
    // util/metrics_hooks.hpp, never by including obs.
    {"obs", {"util"}},
    {"trace", {"util", "obs"}},
    {"workload", {"util", "obs", "trace"}},
    {"predictor", {"util", "obs", "trace"}},
    {"sim", {"util", "obs", "trace", "predictor"}},
    {"core", {"util", "obs", "trace", "workload", "predictor", "sim"}},
    {"check",
     {"util", "obs", "trace", "workload", "predictor", "sim", "core"}},
};

/** Sink trees: may depend on anything, nothing may depend on them. */
const std::set<std::string> kSinkModules = {
    "tools", "bench", "tests", "examples",
};

std::string
firstComponent(const std::string &path)
{
    size_t slash = path.find('/');
    return slash == std::string::npos ? "" : path.substr(0, slash);
}

} // namespace

std::string
moduleOf(const std::string &rel)
{
    std::string head = firstComponent(rel);
    if (head == "src") {
        std::string module = firstComponent(rel.substr(4));
        return kModuleDeps.count(module) ? module : std::string();
    }
    return kSinkModules.count(head) ? head : std::string();
}

std::string
includeModule(const std::string &target)
{
    std::string head = firstComponent(target);
    if (kModuleDeps.count(head))
        return head;
    // Tool headers are included tools-relative ("copra_lint/lint.hpp").
    if (head == "copra_lint")
        return "tools";
    return "";
}

bool
moduleAllowed(const std::string &from, const std::string &to)
{
    if (from.empty() || to.empty() || from == to)
        return true;
    if (kSinkModules.count(from))
        return true;
    auto it = kModuleDeps.find(from);
    if (it == kModuleDeps.end())
        return true; // unknown modules are never constrained
    if (kSinkModules.count(to))
        return false; // sinks are below every src module
    return it->second.count(to) != 0;
}

IncludeGraph
buildIncludeGraph(const std::vector<FileScan> &scans)
{
    // Map every spelling a scanned file can be included by to its rel:
    // src/, bench/, and tools/ headers are included dir-relative, and
    // anything can be named by its full repo-relative path.
    std::map<std::string, std::string> byName;
    for (const FileScan &scan : scans) {
        byName[scan.rel] = scan.rel;
        for (const char *prefix : {"src/", "bench/", "tools/"}) {
            size_t len = std::string(prefix).size();
            if (scan.rel.rfind(prefix, 0) == 0)
                byName[scan.rel.substr(len)] = scan.rel;
        }
    }

    IncludeGraph graph;
    for (const FileScan &scan : scans) {
        std::vector<Include> &edges = graph.edges[scan.rel];
        for (const Include &inc : scan.includeList) {
            auto it = byName.find(inc.target);
            if (it != byName.end() && it->second != scan.rel)
                edges.push_back({it->second, inc.line});
        }
    }
    return graph;
}

std::vector<Finding>
runGraphRules(const std::vector<FileScan> &scans,
              const IncludeGraph &graph)
{
    std::map<std::string, const FileScan *> byRel;
    for (const FileScan &scan : scans)
        byRel[scan.rel] = &scan;

    // Findings grouped by owning file so that file's suppressions can
    // be applied uniformly at the end.
    std::map<std::string, std::vector<Finding>> perFile;

    // --- include-cycle: Tarjan SCCs over the file graph -------------
    std::map<std::string, int> index, lowlink, sccOf;
    std::vector<std::string> stack;
    std::set<std::string> onStack;
    std::vector<std::vector<std::string>> sccs;
    int counter = 0;

    std::function<void(const std::string &)> strongConnect =
        [&](const std::string &v) {
            index[v] = lowlink[v] = counter++;
            stack.push_back(v);
            onStack.insert(v);
            auto it = graph.edges.find(v);
            if (it != graph.edges.end()) {
                for (const Include &e : it->second) {
                    if (!index.count(e.target)) {
                        strongConnect(e.target);
                        lowlink[v] =
                            std::min(lowlink[v], lowlink[e.target]);
                    } else if (onStack.count(e.target)) {
                        lowlink[v] =
                            std::min(lowlink[v], index[e.target]);
                    }
                }
            }
            if (lowlink[v] == index[v]) {
                std::vector<std::string> scc;
                for (;;) {
                    std::string w = stack.back();
                    stack.pop_back();
                    onStack.erase(w);
                    scc.push_back(w);
                    if (w == v)
                        break;
                }
                for (const std::string &w : scc)
                    sccOf[w] = static_cast<int>(sccs.size());
                sccs.push_back(std::move(scc));
            }
        };
    for (const auto &[rel, edges] : graph.edges)
        if (!index.count(rel))
            strongConnect(rel);

    // Every edge inside a non-trivial SCC is reported on its own
    // include line, so each participating file owns — and may
    // individually suppress — its contribution to the cycle.
    for (const auto &[rel, edges] : graph.edges) {
        for (const Include &e : edges) {
            if (sccOf[rel] != sccOf[e.target])
                continue;
            std::vector<std::string> members = sccs[sccOf[rel]];
            if (members.size() < 2)
                continue;
            std::sort(members.begin(), members.end());
            std::string list;
            for (const std::string &m : members)
                list += (list.empty() ? "" : ", ") + m;
            perFile[rel].push_back(
                {rel, e.line, "include-cycle",
                 "include of '" + e.target + "' closes a cycle among "
                 "{" + list + "}; break it with a forward declaration "
                 "or an interface split"});
        }
    }

    // --- layering: resolution- and transitivity-aware back-edges ----
    for (const auto &[rel, edges] : graph.edges) {
        std::string from = moduleOf(rel);
        if (from.empty() || kSinkModules.count(from))
            continue;

        // Spelling of the include on each line, for deciding whether
        // the per-file lexical rule already owns a direct violation.
        std::map<int, std::string> spelling;
        auto scanIt = byRel.find(rel);
        if (scanIt != byRel.end())
            for (const Include &inc : scanIt->second->includeList)
                spelling[inc.line] = inc.target;

        for (const Include &direct : edges) {
            if (!moduleAllowed(from, moduleOf(direct.target))) {
                // A direct back-edge. Lexically visible spellings
                // ("core/x.hpp") are the per-file rule's finding; the
                // graph adds only what resolution alone can see. Either
                // way, don't chase chains through a bad edge.
                if (includeModule(spelling[direct.line]).empty())
                    perFile[rel].push_back(
                        {rel, direct.line, "layering",
                         "include resolves to '" + direct.target +
                         "' (module '" + moduleOf(direct.target) +
                         "'), which module '" + from +
                         "' may not depend on"});
                continue;
            }

            // BFS for a transitive reach into a forbidden module
            // through individually legal edges; shortest chain wins,
            // at most one finding per direct include.
            std::map<std::string, std::string> parent;
            std::deque<std::string> queue;
            parent[direct.target] = rel;
            queue.push_back(direct.target);
            std::string hit;
            while (!queue.empty() && hit.empty()) {
                std::string node = queue.front();
                queue.pop_front();
                auto eit = graph.edges.find(node);
                if (eit == graph.edges.end())
                    continue;
                for (const Include &e : eit->second) {
                    if (parent.count(e.target) || e.target == rel)
                        continue;
                    parent[e.target] = node;
                    if (!moduleAllowed(from, moduleOf(e.target))) {
                        hit = e.target;
                        break;
                    }
                    queue.push_back(e.target);
                }
            }
            if (hit.empty())
                continue;
            std::vector<std::string> chain;
            for (std::string n = hit; n != rel; n = parent[n])
                chain.push_back(n);
            chain.push_back(rel);
            std::reverse(chain.begin(), chain.end());
            std::string path;
            for (const std::string &n : chain)
                path += (path.empty() ? "" : " -> ") + n;
            perFile[rel].push_back(
                {rel, direct.line, "layering",
                 "include-through: " + path + " reaches module '" +
                 moduleOf(hit) + "', which module '" + from +
                 "' may not depend on"});
        }
    }

    std::vector<Finding> all;
    for (auto &[rel, findings] : perFile) {
        auto it = byRel.find(rel);
        std::vector<Finding> kept = it != byRel.end()
            ? applySuppressions(*it->second, std::move(findings))
            : std::move(findings);
        all.insert(all.end(), kept.begin(), kept.end());
    }
    std::sort(all.begin(), all.end());
    return all;
}

std::string
graphToDot(const IncludeGraph &graph, const std::set<std::string> &hotFiles)
{
    std::ostringstream out;
    out << "digraph copra_includes {\n"
        << "    rankdir=LR;\n"
        << "    node [shape=box, fontsize=10];\n";

    // Cluster nodes by module so the rendering reads layer by layer.
    // Files holding hot-region bodies are filled: the orange overlay is
    // the COPRA_HOT closure at file granularity.
    std::map<std::string, std::vector<std::string>> byModule;
    for (const auto &[rel, edges] : graph.edges) {
        std::string module = moduleOf(rel);
        byModule[module.empty() ? "other" : module].push_back(rel);
    }
    for (const auto &[module, nodes] : byModule) {
        out << "    subgraph \"cluster_" << module << "\" {\n"
            << "        label=\"" << module << "\";\n";
        for (const std::string &rel : nodes) {
            out << "        \"" << rel << "\"";
            if (hotFiles.count(rel))
                out << " [style=filled, fillcolor=\"#ffd8a8\"]";
            out << ";\n";
        }
        out << "    }\n";
    }
    for (const auto &[rel, edges] : graph.edges) {
        std::string from = moduleOf(rel);
        for (const Include &e : edges) {
            out << "    \"" << rel << "\" -> \"" << e.target << "\"";
            if (!moduleAllowed(from, moduleOf(e.target)))
                out << " [color=red, penwidth=2]";
            out << ";\n";
        }
    }
    out << "}\n";
    return out.str();
}

} // namespace copra::lint
