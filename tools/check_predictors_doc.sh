#!/bin/sh
# docs/PREDICTORS.md drift gate (the `docs_predictors_sync` ctest
# entry): every factory spec name in knownPredictors()
# (src/predictor/factory.cc) must appear as a spec in the doc's zoo
# table, and every spec the table documents must exist in the factory.
# Pure text cross-check — needs no build, so the CI docs job can run
# it too.
#
# Usage: check_predictors_doc.sh [repo-root]

set -eu

ROOT="${1:-.}"
FACTORY="$ROOT/src/predictor/factory.cc"
DOC="$ROOT/docs/PREDICTORS.md"

for f in "$FACTORY" "$DOC"; do
    if [ ! -f "$f" ]; then
        echo "check_predictors_doc: no such file: $f" >&2
        exit 2
    fi
done

# The initializer list of knownPredictors() is the factory's contract.
factory_names=$(sed -n '/^knownPredictors/,/^}/p' "$FACTORY" |
    grep -oE '"[a-z]+"' | tr -d '"' | sort -u)

if [ -z "$factory_names" ]; then
    echo "check_predictors_doc: found no names in knownPredictors()" >&2
    exit 2
fi

# Spec names from the zoo table: first cell of each `| \`spec\` |` row,
# keeping the leading name of each backticked spec (specs look like
# `name` or `name:key=value,...`). Rows without a spec start "| — ".
doc_names=$(grep -E '^\| `' "$DOC" |
    cut -d'|' -f2 |
    grep -oE '`[a-z]+[^`]*`' |
    sed -E 's/^`([a-z]+).*/\1/' | sort -u)

status=0
for name in $factory_names; do
    if ! printf '%s\n' $doc_names | grep -qx "$name"; then
        echo "factory predictor '$name' is missing from $DOC"
        status=1
    fi
done
for name in $doc_names; do
    if ! printf '%s\n' $factory_names | grep -qx "$name"; then
        echo "$DOC documents '$name', unknown to makePredictor()"
        status=1
    fi
done

if [ "$status" -ne 0 ]; then
    echo "docs/PREDICTORS.md is out of sync with src/predictor/factory.cc"
    exit 1
fi

echo "ok: $(printf '%s\n' $factory_names | wc -l | tr -d ' ') factory predictors all documented"
exit 0
