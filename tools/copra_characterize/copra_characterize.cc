/**
 * @file
 * copra_characterize: per-workload predictability fingerprints.
 *
 * Computes the fingerprint of core/characterize.hpp — footprint, bias,
 * history-conditioned entropy curves H(k), reference gshare accuracy,
 * and the Lin-Tarsa H2P set — for named suite workloads and/or trace
 * files, prints a table, and optionally emits schema'd JSON
 * (docs/schema/fingerprint.schema.json).
 *
 * --doc-workloads regenerates docs/WORKLOADS.md from the live workload
 * registry at a pinned budget; the workloads_doc_drift ctest gate runs
 * it with --check so the committed doc can never go stale (the house
 * pattern of METRICS.md / STATE_BUDGETS.md / HOT_PATH.md).
 *
 * Examples:
 *   copra_characterize --workloads gcc,interp --branches 200000
 *   copra_characterize --all --json fingerprints.json
 *   copra_characterize --trace mine.trc
 *   copra_characterize --doc-workloads --check docs/WORKLOADS.md
 */

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/characterize.hpp"
#include "obs/manifest.hpp"
#include "obs/registry.hpp"
#include "trace/trace_io.hpp"
#include "util/cli.hpp"
#include "util/env.hpp"
#include "util/thread_pool.hpp"
#include "workload/frontier.hpp"
#include "workload/profiles.hpp"

using namespace copra;

namespace {

/** Pinned budget of the generated docs/WORKLOADS.md fingerprint table:
 * small enough for a doc-drift ctest gate, large enough that every
 * fingerprint column is stable. */
constexpr uint64_t kDocBranches = 200000;

std::vector<std::string>
splitNames(const std::string &csv)
{
    std::vector<std::string> names;
    std::istringstream in(csv);
    std::string name;
    while (std::getline(in, name, ','))
        if (!name.empty())
            names.push_back(name);
    return names;
}

/** Fingerprint every suite workload at @p branches, in suite order,
 * fanning the per-workload work across the global pool. */
std::vector<core::WorkloadFingerprint>
fingerprintSuite(const std::vector<std::string> &names, uint64_t branches,
                 uint64_t seed, const core::CharacterizeOptions &options)
{
    std::vector<core::WorkloadFingerprint> fps(names.size());
    parallelFor(globalPool(), names.size(), [&](size_t i) {
        trace::Trace trace =
            workload::makeBenchmarkTrace(names[i], branches, seed);
        fps[i] = core::characterizeTrace(trace, options);
    });
    return fps;
}

void
printFingerprint(const core::WorkloadFingerprint &fp)
{
    std::printf("%s (%s): records=%llu conditionals=%llu static=%llu\n",
                fp.name.c_str(), fp.family.c_str(),
                static_cast<unsigned long long>(fp.records),
                static_cast<unsigned long long>(fp.conditionals),
                static_cast<unsigned long long>(fp.staticBranches));
    std::printf("  taken-rate=%.4f biased(>99%%)=%.4f\n", fp.takenRate,
                fp.biasedFraction99);
    std::printf("  H(k) bits/branch (global/local):");
    for (const core::HistoryEntropyPoint &point : fp.curve)
        std::printf(" k=%u:%.3f/%.3f", point.depth, point.globalBits,
                    point.localBits);
    std::printf("\n");
    std::printf("  history gain: global=%.3f local=%.3f bits\n",
                fp.globalHistoryGainBits(), fp.localHistoryGainBits());
    if (std::isnan(fp.gshareAccuracyPercent)) {
        std::printf("  gshare: n/a\n");
    } else {
        std::printf("  gshare=%.2f%% h2p: branches=%llu static=%.4f "
                    "mispredicts=%.4f\n",
                    fp.gshareAccuracyPercent,
                    static_cast<unsigned long long>(fp.h2pBranches),
                    fp.h2pStaticFraction, fp.h2pMispredictFraction);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    OptionParser parser(
        "per-workload predictability fingerprints (taken-rate, "
        "history-conditioned entropy, H2P fraction) and the generator "
        "of docs/WORKLOADS.md");
    std::string workloads;
    parser.addString("workloads", &workloads,
                     "comma-separated suite workload names");
    bool all = false;
    parser.addFlag("all", &all,
                   "fingerprint the whole suite (paper + frontier)");
    std::string trace_path;
    parser.addString("trace", &trace_path,
                     "fingerprint a binary trace file (v1 or v2)");
    uint64_t branches = 200000;
    parser.addUint("branches", &branches,
                   "conditional branches per generated workload");
    uint64_t seed = 0;
    parser.addUint("seed", &seed, "workload seed (0 = canonical)");
    std::string json_path;
    parser.addString("json", &json_path,
                     "write fingerprints as schema'd JSON here");
    bool no_predictor = false;
    parser.addFlag("no-predictor", &no_predictor,
                   "skip the reference gshare run and H2P analysis");
    bool doc_workloads = false;
    parser.addFlag("doc-workloads", &doc_workloads,
                   "print docs/WORKLOADS.md regenerated from the "
                   "workload registry and exit");
    std::string doc_check;
    parser.addString("check", &doc_check,
                     "with --doc-workloads: compare against this file "
                     "and exit non-zero on drift");
    uint64_t threads = 0;
    parser.addUint("threads", &threads,
                   "worker threads (0 = COPRA_THREADS or hardware)");
    std::string metrics_out = util::envString("COPRA_METRICS_OUT", "");
    parser.addString("metrics-out", &metrics_out,
                     "write a run-manifest JSON here "
                     "($COPRA_METRICS_OUT; empty = off)");
    if (!parser.parse(argc, argv))
        return 0;
    setGlobalPoolThreads(static_cast<unsigned>(threads));
    obs::setEnabled(!metrics_out.empty());

    core::CharacterizeOptions options;
    options.withPredictor = !no_predictor;

    if (doc_workloads) {
        std::vector<core::WorkloadFingerprint> fps = fingerprintSuite(
            workload::workloadSuiteNames(), kDocBranches, 0, options);
        std::string doc = core::renderWorkloadsDoc(fps, kDocBranches);
        if (doc_check.empty()) {
            std::fputs(doc.c_str(), stdout);
            return 0;
        }
        std::ifstream in(doc_check, std::ios::binary);
        std::ostringstream committed;
        committed << in.rdbuf();
        if (in && committed.str() == doc)
            return 0;
        std::fprintf(stderr,
                     "%s is stale (or unreadable); regenerate with\n"
                     "  copra_characterize --doc-workloads > %s\n",
                     doc_check.c_str(), doc_check.c_str());
        return 1;
    }

    std::vector<std::string> names = splitNames(workloads);
    if (all)
        names = workload::workloadSuiteNames();
    if (names.empty() && trace_path.empty()) {
        std::fprintf(stderr,
                     "copra_characterize: nothing to do (use "
                     "--workloads, --all, or --trace)\n");
        return 2;
    }

    std::vector<core::WorkloadFingerprint> fps;
    try {
        fps = fingerprintSuite(names, branches, seed, options);
        if (!trace_path.empty()) {
            trace::Trace trace = trace::loadBinary(trace_path);
            fps.push_back(core::characterizeTrace(trace, options));
        }
    } catch (const std::exception &e) {
        std::fprintf(stderr, "copra_characterize: %s\n", e.what());
        return 1;
    }

    for (const core::WorkloadFingerprint &fp : fps)
        printFingerprint(fp);

    if (!json_path.empty()) {
        std::ofstream out(json_path, std::ios::binary);
        if (!out) {
            std::fprintf(stderr,
                         "copra_characterize: cannot write '%s'\n",
                         json_path.c_str());
            return 1;
        }
        out << core::fingerprintsToJson(fps).dump(2) << "\n";
    }

    if (obs::enabled()) {
        obs::RunInfo info;
        info.tool = "copra_characterize";
        std::string args;
        for (int i = 1; i < argc; ++i) {
            if (i > 1)
                args += " ";
            args += argv[i];
        }
        info.args = args;
        info.seed = seed;
        info.threads = globalPool().size();
        obs::writeManifest(metrics_out, info);
    }
    return 0;
}
