/**
 * @file
 * copra_report — run-manifest comparison and metrics documentation.
 *
 * Modes:
 *   copra_report diff <before.json> <after.json> [--threshold 0.05]
 *       Print a Markdown regression report comparing two run manifests
 *       (as written by any bench or CLI via --metrics-out).
 *
 *   copra_report --doc-registry [--check <file>]
 *       Print docs/METRICS.md regenerated from the live instrument
 *       registry; with --check, compare against <file> instead and exit
 *       non-zero on drift (the metrics_doc_drift ctest gate).
 *
 *   copra_report --summary <manifest.json>
 *       Print the non-zero instruments of a manifest as an aligned
 *       table.
 *
 *   copra_report perf-gate <current.json> [--baseline <before.json>]
 *                [--max-regress <frac>] [--json]
 *       Compute simulated branches/s from a run manifest
 *       (sim.run.branches over the summed sim.phase.predictor.seconds
 *       wall time). With --baseline, exit non-zero when throughput
 *       regressed by more than --max-regress (default 0.15) — the CI
 *       bench-perf hard gate. With --json, print a small snapshot
 *       object (committed as BENCH_<n>.json to track the perf
 *       trajectory in-repo).
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "obs/manifest.hpp"
#include "obs/report.hpp"

namespace {

using namespace copra;

int
usage(const char *prog)
{
    std::fprintf(
        stderr,
        "usage:\n"
        "  %s diff <before.json> <after.json> [--threshold <frac>]\n"
        "  %s --doc-registry [--check <file>]\n"
        "  %s --summary <manifest.json>\n"
        "  %s perf-gate <current.json> [--baseline <before.json>]\n"
        "     [--max-regress <frac>] [--json]\n",
        prog, prog, prog, prog);
    return 2;
}

/**
 * Simulated branch throughput recorded in @p manifest: total dynamic
 * branches fed to predictors over the summed predictor-phase wall
 * time. Throws when the manifest lacks either instrument — a manifest
 * from a binary that never ran a simulation has no throughput.
 */
double
branchesPerSecond(const obs::Json &manifest)
{
    double branches = 0.0;
    double seconds = 0.0;
    bool have_branches = false;
    bool have_seconds = false;
    for (const obs::Json &entry : manifest.at("instruments").items()) {
        const std::string &key = entry.at("key").asString();
        if (key == "sim.run.branches") {
            branches = entry.at("value").asNumber();
            have_branches = true;
        } else if (key == "sim.phase.predictor.seconds") {
            seconds = entry.at("sum").asNumber();
            have_seconds = true;
        }
    }
    if (!have_branches || !have_seconds || seconds <= 0.0 ||
        branches <= 0.0) {
        throw std::runtime_error(
            "manifest records no simulated-branch throughput "
            "(sim.run.branches / sim.phase.predictor.seconds)");
    }
    return branches / seconds;
}

int
runPerfGate(int argc, char **argv)
{
    std::string current_path;
    std::string baseline_path;
    double max_regress = 0.15;
    bool as_json = false;
    for (int i = 2; i < argc; ++i) {
        if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc) {
            baseline_path = argv[++i];
        } else if (std::strcmp(argv[i], "--max-regress") == 0 &&
                   i + 1 < argc) {
            max_regress = std::strtod(argv[++i], nullptr);
        } else if (std::strcmp(argv[i], "--json") == 0) {
            as_json = true;
        } else if (current_path.empty()) {
            current_path = argv[i];
        } else {
            return usage(argv[0]);
        }
    }
    if (current_path.empty())
        return usage(argv[0]);

    obs::Json current = obs::loadManifest(current_path);
    double now = branchesPerSecond(current);
    if (as_json) {
        std::printf("{\n"
                    "  \"tool\": \"%s\",\n"
                    "  \"git_sha\": \"%s\",\n"
                    "  \"branches_per_second\": %.0f\n"
                    "}\n",
                    current.at("tool").asString().c_str(),
                    current.at("git_sha").asString().c_str(), now);
    } else {
        std::printf("current:  %12.0f branches/s (%s)\n", now,
                    current_path.c_str());
    }
    if (baseline_path.empty())
        return 0;

    obs::Json baseline = obs::loadManifest(baseline_path);
    double base = branchesPerSecond(baseline);
    double ratio = now / base;
    if (!as_json)
        std::printf("baseline: %12.0f branches/s (%s)\n"
                    "ratio:    %.3fx\n",
                    base, baseline_path.c_str(), ratio);
    if (ratio < 1.0 - max_regress) {
        std::fprintf(stderr,
                     "copra_report: throughput regressed %.1f%% "
                     "(limit %.1f%%)\n",
                     (1.0 - ratio) * 100.0, max_regress * 100.0);
        return 1;
    }
    return 0;
}

int
runDiff(int argc, char **argv)
{
    obs::DiffOptions options;
    std::string before_path;
    std::string after_path;
    for (int i = 2; i < argc; ++i) {
        if (std::strcmp(argv[i], "--threshold") == 0 && i + 1 < argc) {
            options.threshold = std::strtod(argv[++i], nullptr);
        } else if (before_path.empty()) {
            before_path = argv[i];
        } else if (after_path.empty()) {
            after_path = argv[i];
        } else {
            return usage(argv[0]);
        }
    }
    if (before_path.empty() || after_path.empty())
        return usage(argv[0]);
    // Load in argument order so the error names the first bad file
    // (function-argument evaluation order is unspecified).
    obs::Json before = obs::loadManifest(before_path);
    obs::Json after = obs::loadManifest(after_path);
    std::string report = obs::diffManifests(before, after, options);
    std::fputs(report.c_str(), stdout);
    return 0;
}

int
runDocRegistry(int argc, char **argv)
{
    std::string check_path;
    for (int i = 2; i < argc; ++i) {
        if (std::strcmp(argv[i], "--check") == 0 && i + 1 < argc)
            check_path = argv[++i];
        else
            return usage(argv[0]);
    }
    std::string doc = obs::renderRegistryDoc();
    if (check_path.empty()) {
        std::fputs(doc.c_str(), stdout);
        return 0;
    }
    std::ifstream in(check_path);
    if (!in) {
        std::fprintf(stderr, "copra_report: cannot open %s\n",
                     check_path.c_str());
        return 1;
    }
    std::ostringstream slurp;
    slurp << in.rdbuf();
    if (slurp.str() == doc) {
        std::printf("%s matches the instrument registry\n",
                    check_path.c_str());
        return 0;
    }
    std::fprintf(stderr,
                 "copra_report: %s has drifted from the instrument "
                 "registry.\nRegenerate it with:\n"
                 "  copra_report --doc-registry > %s\n",
                 check_path.c_str(), check_path.c_str());
    return 1;
}

int
runSummary(int argc, char **argv)
{
    if (argc != 3)
        return usage(argv[0]);
    obs::Json manifest = obs::loadManifest(argv[2]);
    std::printf("manifest %s (tool=%s git=%s)\n", argv[2],
                manifest.at("tool").asString().c_str(),
                manifest.at("git_sha").asString().c_str());
    for (const obs::Json &entry :
         manifest.at("instruments").items()) {
        const obs::Json *value = entry.find("value");
        if (value != nullptr) {
            if (value->asNumber() == 0.0)
                continue;
            std::printf("  %-34s %12.0f %s\n",
                        entry.at("key").asString().c_str(),
                        value->asNumber(),
                        entry.at("unit").asString().c_str());
        } else {
            double count = entry.at("count").asNumber();
            if (count == 0.0)
                continue;
            std::printf("  %-34s %12.0f samples  sum=%-12.6g "
                        "min=%-10.4g max=%-10.4g [%s]\n",
                        entry.at("key").asString().c_str(), count,
                        entry.at("sum").asNumber(),
                        entry.at("min").asNumber(),
                        entry.at("max").asNumber(),
                        entry.at("unit").asString().c_str());
        }
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage(argv[0]);
    try {
        if (std::strcmp(argv[1], "diff") == 0)
            return runDiff(argc, argv);
        if (std::strcmp(argv[1], "--doc-registry") == 0)
            return runDocRegistry(argc, argv);
        if (std::strcmp(argv[1], "--summary") == 0)
            return runSummary(argc, argv);
        if (std::strcmp(argv[1], "perf-gate") == 0)
            return runPerfGate(argc, argv);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "copra_report: %s\n", e.what());
        return 1;
    }
    return usage(argv[0]);
}
