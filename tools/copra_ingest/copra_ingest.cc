/**
 * @file
 * copra_ingest: validate and normalize a foreign branch trace into a
 * native cache-v2 binary trace file.
 *
 * The ingestion frontend (src/trace/ingest.hpp) accepts the versioned
 * copra text grammar, CSV rows, or a CBP-championship-style packed
 * binary (formats documented in docs/TRACES.md), normalizes foreign
 * quirks (outcome conventions, CSV row order), and the tool emits the
 * result with trace::saveBinary — the same v2 layout the trace cache
 * mmaps. Provenance (record counts, normalization counts, warnings)
 * is recorded in the run manifest via --metrics-out.
 *
 * Examples:
 *   copra_ingest --in theirs.trace --out mine.trc
 *   copra_ingest --in theirs.csv --format csv --name db2 --out db2.trc
 *   copra_ingest --in cbp.bin --validate       # parse + report only
 */

#include <cmath>
#include <cstdio>

#include "obs/instruments.hpp"
#include "obs/manifest.hpp"
#include "obs/registry.hpp"
#include "trace/ingest.hpp"
#include "trace/trace_io.hpp"
#include "util/cli.hpp"
#include "util/env.hpp"

using namespace copra;

int
main(int argc, char **argv)
{
    OptionParser parser(
        "validate and normalize a foreign branch trace into a native "
        "cache-v2 binary trace file (formats: docs/TRACES.md)");
    std::string in_path;
    parser.addString("in", &in_path, "input trace file (required)");
    std::string out_path;
    parser.addString("out", &out_path,
                     "output v2 binary trace path (empty with "
                     "--validate = parse only)");
    std::string format_name = "auto";
    parser.addString("format", &format_name,
                     "input format: auto, text, csv, or cbp");
    std::string name;
    parser.addString("name", &name,
                     "trace name override (default: source directive "
                     "or filename stem)");
    uint64_t seed = 0;
    parser.addUint("seed", &seed, "recorded seed override");
    bool validate = false;
    parser.addFlag("validate", &validate,
                   "parse and report without writing an output file");
    std::string metrics_out = util::envString("COPRA_METRICS_OUT", "");
    parser.addString("metrics-out", &metrics_out,
                     "write a run-manifest JSON here "
                     "($COPRA_METRICS_OUT; empty = off)");
    if (!parser.parse(argc, argv))
        return 0;
    if (in_path.empty()) {
        std::fprintf(stderr, "copra_ingest: --in is required\n");
        return 2;
    }
    if (out_path.empty() && !validate) {
        std::fprintf(stderr,
                     "copra_ingest: --out is required (or --validate "
                     "to parse only)\n");
        return 2;
    }
    obs::setEnabled(!metrics_out.empty());

    trace::IngestOptions options;
    options.name = name;
    options.seed = seed;
    options.hasSeed = seed != 0;
    trace::IngestReport report;
    trace::Trace trace;
    try {
        options.format = trace::parseIngestFormat(format_name);
        trace = trace::ingestFile(in_path, options, report);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "copra_ingest: %s\n", e.what());
        return 1;
    }

    for (const std::string &warning : report.warnings)
        std::fprintf(stderr, "copra_ingest: warning: %s\n",
                     warning.c_str());
    std::printf("ingested %s: format=%s records=%llu conditionals=%llu "
                "normalized=%llu reordered=%llu name=%s\n",
                in_path.c_str(), trace::ingestFormatName(report.format),
                static_cast<unsigned long long>(report.records),
                static_cast<unsigned long long>(report.conditionals),
                static_cast<unsigned long long>(report.normalizedTaken),
                static_cast<unsigned long long>(report.reordered),
                trace.name().c_str());

    if (!out_path.empty()) {
        try {
            trace::saveBinary(trace, out_path);
        } catch (const std::exception &e) {
            std::fprintf(stderr, "copra_ingest: %s\n", e.what());
            return 1;
        }
        std::printf("wrote %s (v%u column binary)\n", out_path.c_str(),
                    trace::kTraceFormatVersion);
    }

    if (obs::enabled()) {
        obs::count(obs::ids().traceIngestRecords, report.records);
        obs::count(obs::ids().traceIngestConditionals,
                   report.conditionals);
        obs::count(obs::ids().traceIngestNormalized,
                   report.normalizedTaken);
        obs::count(obs::ids().traceIngestReordered, report.reordered);
        obs::count(obs::ids().traceIngestWarnings,
                   report.warnings.size());
        obs::RunInfo info;
        info.tool = "copra_ingest";
        std::string args;
        for (int i = 1; i < argc; ++i) {
            if (i > 1)
                args += " ";
            args += argv[i];
        }
        info.args = args;
        info.seed = trace.seed();
        info.threads = 1;
        obs::writeManifest(metrics_out, info);
    }
    return 0;
}
