#!/bin/sh
# Machine-format the tree with clang-format against the checked-in
# .clang-format (gem5 style: 4-space indent, 79 columns, return type
# on its own line).
#
#   tools/format.sh          # rewrite files in place
#   tools/format.sh --check  # dry run, nonzero exit on drift (CI gate)
#
# The lint corpus and golden snapshots are excluded: corpus comment
# columns are load-bearing expectation markers, and golden files must
# stay byte-exact. Set CLANG_FORMAT to pin a specific binary.

set -eu
cd "$(dirname "$0")/.."

FORMAT="${CLANG_FORMAT:-clang-format}"
if ! command -v "$FORMAT" >/dev/null 2>&1; then
    echo "format.sh: '$FORMAT' not found; install clang-format or" \
         "point CLANG_FORMAT at one" >&2
    exit 127
fi

MODE="${1:-}"
case "$MODE" in
  --check)
    git ls-files '*.cc' '*.cpp' '*.hpp' '*.h' \
        ':!tests/lint_corpus' ':!tests/golden' \
      | xargs "$FORMAT" --dry-run --Werror
    ;;
  "")
    git ls-files '*.cc' '*.cpp' '*.hpp' '*.h' \
        ':!tests/lint_corpus' ':!tests/golden' \
      | xargs "$FORMAT" -i
    ;;
  *)
    echo "usage: tools/format.sh [--check]" >&2
    exit 2
    ;;
esac
