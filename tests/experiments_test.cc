/**
 * @file
 * Tests for the experiment assembly layer: every row producer yields
 * sane, internally consistent values on a small benchmark.
 */

#include <gtest/gtest.h>

#include "core/experiments.hpp"
#include "workload/profiles.hpp"

namespace copra::core {
namespace {

ExperimentConfig
smallConfig()
{
    ExperimentConfig config;
    config.branches = 40000;
    config.mineConditionals = 40000;
    return config;
}

class ExperimentsFixture : public ::testing::Test
{
  protected:
    ExperimentsFixture() : experiment_("compress", smallConfig()) {}
    BenchmarkExperiment experiment_;
};

TEST_F(ExperimentsFixture, TraceMatchesConfig)
{
    EXPECT_EQ(experiment_.trace().conditionalCount(), 40000u);
    EXPECT_EQ(experiment_.name(), "compress");
    EXPECT_GT(experiment_.stats().staticBranches(), 10u);
}

TEST_F(ExperimentsFixture, Fig4RowIsOrderedSanely)
{
    Fig4Row row = experiment_.fig4Row();
    EXPECT_EQ(row.name, "compress");
    for (double v : {row.selective1, row.selective2, row.selective3,
                     row.ifGshare, row.gshare}) {
        EXPECT_GT(v, 50.0);
        EXPECT_LE(v, 100.0);
    }
    // Larger selective histories never hurt much (greedy can dip by
    // training cost, but more than a point would be a bug).
    EXPECT_GE(row.selective2 + 1.0, row.selective1);
    EXPECT_GE(row.selective3 + 1.0, row.selective2);
}

TEST_F(ExperimentsFixture, Table2CombinationsDominateBaselines)
{
    Table2Row row = experiment_.table2Row();
    // Best-of combinations are per-branch maxima: they can never lose
    // to their base predictor.
    EXPECT_GE(row.gshareWithCorr, row.gshare);
    EXPECT_GE(row.ifGshareWithCorr, row.ifGshare);
}

TEST_F(ExperimentsFixture, Fig6FractionsSumToOne)
{
    Fig6Row row = experiment_.fig6Row();
    double sum = 0.0;
    for (double f : row.fractions) {
        EXPECT_GE(f, 0.0);
        sum += f;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
    EXPECT_GE(row.staticBiasedFraction, 0.0);
    EXPECT_LE(row.staticBiasedFraction, 1.0);
}

TEST_F(ExperimentsFixture, Table3LoopEnhancementIsBounded)
{
    Table3Row row = experiment_.table3Row();
    EXPECT_GT(row.pas, 50.0);
    EXPECT_GT(row.ifPas, 50.0);
    // The loop-enhanced hybrids replace only loop-class branches; they
    // stay within a few points of the base in either direction.
    EXPECT_NEAR(row.pasWithLoop, row.pas, 10.0);
    EXPECT_NEAR(row.ifPasWithLoop, row.ifPas, 10.0);
}

TEST_F(ExperimentsFixture, Fig7And8SplitsSumToOne)
{
    for (BestOfSplit split :
         {experiment_.fig7Split(), experiment_.fig8Split()}) {
        EXPECT_NEAR(split.fracA + split.fracB + split.fracStatic, 1.0,
                    1e-9);
        EXPECT_GE(split.staticBiasedFraction, 0.0);
        EXPECT_LE(split.staticBiasedFraction, 1.0);
    }
}

TEST_F(ExperimentsFixture, Fig9PercentilesAreMonotone)
{
    WeightedPercentiles wp = experiment_.fig9Percentiles();
    EXPECT_EQ(wp.totalWeight(), 40000u);
    auto curve = wp.curve(10.0);
    for (size_t i = 1; i < curve.size(); ++i)
        EXPECT_GE(curve[i].second, curve[i - 1].second);
    // Differences are percentage points in [-100, 100].
    EXPECT_GE(curve.front().second, -100.0);
    EXPECT_LE(curve.back().second, 100.0);
}

TEST_F(ExperimentsFixture, LedgersAreCachedAndConsistent)
{
    const sim::Ledger &first = experiment_.gshareLedger();
    const sim::Ledger &second = experiment_.gshareLedger();
    EXPECT_EQ(&first, &second); // same object: computed once
    EXPECT_EQ(first.dynamic(), 40000u);
    EXPECT_EQ(experiment_.pasLedger().dynamic(), 40000u);
    EXPECT_EQ(experiment_.ifGshareLedger().dynamic(), 40000u);
}

TEST(Experiments, ExternalTraceConstructor)
{
    ExperimentConfig config = smallConfig();
    trace::Trace trace =
        workload::makeBenchmarkTrace("xlisp", 20000, 0);
    BenchmarkExperiment experiment(std::move(trace), config);
    EXPECT_EQ(experiment.name(), "xlisp");
    EXPECT_EQ(experiment.gshareLedger().dynamic(), 20000u);
}

TEST(Experiments, Fig5SeriesCoversRequestedDepths)
{
    ExperimentConfig config = smallConfig();
    config.branches = 20000;
    config.mineConditionals = 20000;
    trace::Trace trace = makeExperimentTrace("compress", config);
    auto series = fig5Series(trace, config, {8, 16, 24});
    ASSERT_EQ(series.size(), 3u);
    EXPECT_EQ(series[0].first, 8u);
    EXPECT_EQ(series[2].first, 24u);
    for (const auto &[depth, acc] : series) {
        EXPECT_GT(acc, 50.0);
        EXPECT_LE(acc, 100.0);
    }
}

TEST(Experiments, DeterministicAcrossInstances)
{
    ExperimentConfig config = smallConfig();
    config.branches = 20000;
    BenchmarkExperiment a("go", config);
    BenchmarkExperiment b("go", config);
    EXPECT_DOUBLE_EQ(a.gshareLedger().accuracyPercent(),
                     b.gshareLedger().accuracyPercent());
    Fig4Row ra = a.fig4Row();
    Fig4Row rb = b.fig4Row();
    EXPECT_DOUBLE_EQ(ra.selective3, rb.selective3);
}

} // namespace
} // namespace copra::core
