/**
 * @file
 * Unit tests for the selective-history oracle: exact replay scoring,
 * greedy and exhaustive selection, and the ledger/selection exports.
 */

#include <gtest/gtest.h>

#include "core/oracle.hpp"
#include "core/selective.hpp"
#include "sim/driver.hpp"
#include "util/rng.hpp"
#include "workload/patterns.hpp"
#include "workload/profiles.hpp"

namespace copra::core {
namespace {

using trace::BranchKind;

/** Pack a replay row: candidate states (2 bits each) plus outcome. */
uint32_t
row(std::initializer_list<TagOutcome> states, bool taken)
{
    uint32_t r = taken ? (1u << 31) : 0u;
    unsigned i = 0;
    for (TagOutcome s : states)
        r |= static_cast<uint32_t>(s) << (2 * i++);
    return r;
}

TEST(ReplayScore, EmptySubsetIsABareCounter)
{
    // Counter starts weakly-not-taken: predicts N until trained.
    std::vector<uint32_t> rows = {
        row({}, false), // predict N, correct
        row({}, true),  // predict N, wrong; counter moves to 1->2? (0->1)
        row({}, true),  // counter 1: predict N, wrong
        row({}, true),  // counter 2: predict T, correct
        row({}, true),  // correct
    };
    // Walk: c=1: N vs N correct (c->0); T wrong (c->1); T wrong? c=1
    // predicts N, wrong (c->2); T correct (c->3); T correct.
    EXPECT_EQ(SelectiveOracle::replayScore(rows, {}), 3u);
}

TEST(ReplayScore, SingleCandidateSeparatesContexts)
{
    // Candidate state Taken -> outcome T; NotTaken -> outcome N.
    std::vector<uint32_t> rows;
    for (int i = 0; i < 50; ++i) {
        rows.push_back(row({TagOutcome::Taken}, true));
        rows.push_back(row({TagOutcome::NotTaken}, false));
    }
    // Only initial training misses (<= 2 per pattern).
    EXPECT_GE(SelectiveOracle::replayScore(rows, {0}), 96u);
    // Ignoring the candidate (empty subset) alternates and does badly.
    EXPECT_LT(SelectiveOracle::replayScore(rows, {}), 60u);
}

TEST(ReplayScore, SubsetSelectsTheRightBits)
{
    // Two candidates; only candidate 1 is informative.
    std::vector<uint32_t> rows;
    Rng rng(9);
    for (int i = 0; i < 200; ++i) {
        TagOutcome noise =
            rng.bernoulli(0.5) ? TagOutcome::Taken : TagOutcome::NotTaken;
        bool outcome = rng.bernoulli(0.5);
        TagOutcome informative =
            outcome ? TagOutcome::Taken : TagOutcome::NotTaken;
        rows.push_back(row({noise, informative}, outcome));
    }
    uint64_t with_informative = SelectiveOracle::replayScore(rows, {1});
    uint64_t with_noise = SelectiveOracle::replayScore(rows, {0});
    EXPECT_GT(with_informative, 190u);
    EXPECT_LT(with_noise, 140u);
}

TEST(Oracle, RecoversPerfectCorrelation)
{
    auto trace = workload::correlatedPairTrace(0x100, 0x200, 0.5, 1.0,
                                               8000, 3);
    OracleConfig config;
    config.historyDepth = 16;
    config.candidatePool = 8;
    SelectiveOracle oracle(trace, config);

    const BranchSelection *x = oracle.branch(0x200);
    ASSERT_NE(x, nullptr);
    EXPECT_EQ(x->execs, 8000u);
    // One watched branch suffices for near-perfect prediction.
    EXPECT_GT(100.0 * x->correct[0] / x->execs, 99.0);
    ASSERT_EQ(x->chosen[0].size(), 1u);
    EXPECT_EQ(x->chosen[0][0].pc(), 0x100u);
}

TEST(Oracle, TwoBranchesBeatOneOnConjunction)
{
    // X = Y1 AND Y2 with independent coins.
    trace::Trace t("and2");
    Rng rng(5);
    for (int i = 0; i < 15000; ++i) {
        bool c1 = rng.bernoulli(0.5);
        bool c2 = rng.bernoulli(0.5);
        t.append({0x100, 0x180, BranchKind::Conditional, c1});
        t.append({0x104, 0x180, BranchKind::Conditional, c2});
        t.append({0x108, 0x180, BranchKind::Conditional, c1 && c2});
    }
    OracleConfig config;
    config.candidatePool = 8;
    SelectiveOracle oracle(t, config);
    const BranchSelection *x = oracle.branch(0x108);
    ASSERT_NE(x, nullptr);
    double acc1 = 100.0 * x->correct[0] / x->execs;
    double acc2 = 100.0 * x->correct[1] / x->execs;
    EXPECT_GT(acc2, 99.0);
    EXPECT_GT(acc2, acc1 + 8.0);
    EXPECT_EQ(x->chosen[1].size(), 2u);
}

TEST(Oracle, AggregateAccuracyIsExecutionWeighted)
{
    auto trace = workload::correlatedPairTrace(0x100, 0x200, 0.5, 1.0,
                                               4000, 3);
    OracleConfig config;
    SelectiveOracle oracle(trace, config);
    // Y is a coin (~50%); X is near-perfect: aggregate ~75%.
    double agg = oracle.accuracyPercent(1);
    EXPECT_GT(agg, 70.0);
    EXPECT_LT(agg, 80.0);
}

TEST(Oracle, LedgerMatchesSelections)
{
    auto trace = workload::correlatedPairTrace(0x100, 0x200, 0.5, 0.9,
                                               3000, 7);
    OracleConfig config;
    SelectiveOracle oracle(trace, config);
    sim::Ledger ledger = oracle.toLedger(1);
    EXPECT_EQ(ledger.branch(0x200).execs, 3000u);
    EXPECT_EQ(ledger.branch(0x200).correct,
              oracle.branch(0x200)->correct[0]);
    EXPECT_EQ(ledger.dynamic(), 6000u);
}

TEST(Oracle, SelectionMapFeedsOnlinePredictor)
{
    auto trace = workload::correlatedPairTrace(0x100, 0x200, 0.5, 1.0,
                                               3000, 7);
    OracleConfig config;
    SelectiveOracle oracle(trace, config);
    auto map = oracle.selectionMap(1);
    ASSERT_TRUE(map.count(0x200));
    EXPECT_EQ(map.at(0x200).size(), 1u);
}

TEST(Oracle, ExhaustiveAtLeastMatchesGreedy)
{
    trace::Trace t("xor");
    Rng rng(11);
    // X = Y1 XOR Y2: greedy's first pick is uninformative alone, so
    // exhaustive pair search must win or tie at size 2.
    for (int i = 0; i < 4000; ++i) {
        bool c1 = rng.bernoulli(0.5);
        bool c2 = rng.bernoulli(0.5);
        t.append({0x100, 0x180, BranchKind::Conditional, c1});
        t.append({0x104, 0x180, BranchKind::Conditional, c2});
        t.append({0x108, 0x180, BranchKind::Conditional, c1 != c2});
    }
    // XOR has zero *marginal* information per input, so gain-ranked
    // mining cannot prioritize the right candidates; keep the candidate
    // space small enough (depth 4, only three static branches) that the
    // pool provably contains both inputs.
    OracleConfig greedy;
    greedy.historyDepth = 4;
    greedy.candidatePool = 8;
    OracleConfig exhaustive = greedy;
    exhaustive.exhaustive = true;

    SelectiveOracle g(t, greedy);
    SelectiveOracle e(t, exhaustive);
    EXPECT_GE(e.branch(0x108)->correct[1] + 8,
              g.branch(0x108)->correct[1]);
    // The XOR needs both inputs: exhaustive size-2 is near perfect.
    EXPECT_GT(100.0 * e.branch(0x108)->correct[1] /
                  e.branch(0x108)->execs,
              97.0);
}

TEST(Oracle, InPathCorrelationIsCaptured)
{
    auto trace = workload::inPathTrace(0x100, 0.5, 0.5, 0.5, 12000, 13);
    OracleConfig config;
    SelectiveOracle oracle(trace, config);
    const BranchSelection *x = oracle.branch(0x140);
    ASSERT_NE(x, nullptr);
    // X's bias ceiling is 75%; in-path correlation must beat it well.
    EXPECT_GT(100.0 * x->correct[0] / x->execs, 90.0);
}

TEST(Oracle, ColdBranchFallsBackToCounter)
{
    // A branch with no mined candidates (whole trace is one branch with
    // an empty window preceding it) still gets scored.
    auto trace = workload::biasedTrace(0x100, 0.9, 500, 3);
    OracleConfig config;
    SelectiveOracle oracle(trace, config);
    const BranchSelection *b = oracle.branch(0x100);
    ASSERT_NE(b, nullptr);
    EXPECT_GT(100.0 * b->correct[2] / b->execs, 80.0);
}

TEST(Oracle, DepthLimitsCandidateVisibility)
{
    // Y and X separated by 20 noise branches: a depth-8 oracle cannot
    // see Y, a depth-32 one can.
    trace::Trace t("far");
    Rng rng(17);
    for (int i = 0; i < 4000; ++i) {
        bool c = rng.bernoulli(0.5);
        t.append({0x100, 0x180, BranchKind::Conditional, c});
        for (int j = 0; j < 20; ++j) {
            t.append({0x400 + 4u * j, 0x480, BranchKind::Conditional,
                      rng.bernoulli(0.5)});
        }
        t.append({0x200, 0x280, BranchKind::Conditional, c});
    }
    OracleConfig narrow;
    narrow.historyDepth = 8;
    OracleConfig wide;
    wide.historyDepth = 32;
    SelectiveOracle near_oracle(t, narrow);
    SelectiveOracle far_oracle(t, wide);
    double near_acc = 100.0 * near_oracle.branch(0x200)->correct[0] /
        near_oracle.branch(0x200)->execs;
    double far_acc = 100.0 * far_oracle.branch(0x200)->correct[0] /
        far_oracle.branch(0x200)->execs;
    EXPECT_LT(near_acc, 60.0);
    EXPECT_GT(far_acc, 97.0);
}

TEST(Oracle, OnlineSelectivePredictorMatchesReplayExactly)
{
    // The oracle scores selections by replaying recorded states through
    // a fresh counter table; the online SelectivePredictor implements
    // the same scheme incrementally. For the same selection the two
    // must agree on every branch, exactly — any divergence means the
    // window bookkeeping, the 3-valued encoding, or the counter
    // dynamics desynchronized.
    auto trace = workload::inPathTrace(0x100, 0.4, 0.6, 0.5, 6000, 21);
    OracleConfig config;
    config.historyDepth = 16;
    config.candidatePool = 8;
    SelectiveOracle oracle(trace, config);

    for (unsigned size = 1; size <= 3; ++size) {
        SelectivePredictor online(oracle.selectionMap(size),
                                  config.historyDepth);
        sim::Ledger ledger;
        sim::run(trace, online, &ledger);
        for (const auto &[pc, sel] : oracle.branches()) {
            if (sel.chosen[size - 1].empty())
                continue; // online falls back to a bare counter there
            EXPECT_EQ(ledger.branch(pc).correct, sel.correct[size - 1])
                << "pc=0x" << std::hex << pc << std::dec
                << " size=" << size;
        }
    }
}

TEST(Oracle, MixedBenchmarkOnlineReplayConsistency)
{
    // Same exactness check on a full synthetic benchmark (loops, calls,
    // backward jumps — everything the window bookkeeping must track).
    auto trace = workload::makeBenchmarkTrace("xlisp", 30000, 0);
    OracleConfig config;
    SelectiveOracle oracle(trace, config);
    SelectivePredictor online(oracle.selectionMap(3),
                              config.historyDepth);
    sim::Ledger ledger;
    sim::run(trace, online, &ledger);
    uint64_t mismatched = 0;
    for (const auto &[pc, sel] : oracle.branches()) {
        if (sel.chosen[2].empty())
            continue;
        if (ledger.branch(pc).correct != sel.correct[2])
            ++mismatched;
    }
    EXPECT_EQ(mismatched, 0u);
}

TEST(OracleDeath, ConfigBoundsEnforced)
{
    auto trace = workload::biasedTrace(0x100, 0.5, 10, 1);
    OracleConfig config;
    config.candidatePool = 16; // packing limit is 15
    EXPECT_EXIT(SelectiveOracle(trace, config),
                ::testing::ExitedWithCode(1), "candidate pool");
    OracleConfig config2;
    config2.maxSelect = 4;
    EXPECT_EXIT(SelectiveOracle(trace, config2),
                ::testing::ExitedWithCode(1), "maxSelect");
}

} // namespace
} // namespace copra::core
