/**
 * @file
 * Unit tests for the simulation driver and the per-branch ledger.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "predictor/static_pred.hpp"
#include "sim/driver.hpp"
#include "sim/ledger.hpp"
#include "workload/patterns.hpp"

namespace copra::sim {
namespace {

using predictor::AlwaysNotTaken;
using predictor::AlwaysTaken;
using trace::BranchKind;
using trace::BranchRecord;

/** Probe predictor that records the driver's call sequence. */
class Probe : public predictor::Predictor
{
  public:
    bool
    predict(const BranchRecord &) noexcept override
    {
        ++predicts;
        return true;
    }
    void
    update(const BranchRecord &, bool taken) noexcept override
    {
        ++updates;
        if (taken)
            ++taken_updates;
    }
    void observe(const BranchRecord &) noexcept override { ++observes; }
    void reset() override { predicts = updates = observes = 0; }
    std::string name() const override { return "probe"; }

    int predicts = 0;
    int updates = 0;
    int observes = 0;
    int taken_updates = 0;
};

trace::Trace
mixedTrace()
{
    trace::Trace t("mixed");
    t.append({0x100, 0x180, BranchKind::Conditional, true});
    t.append({0x104, 0x400, BranchKind::Call, true});
    t.append({0x404, 0x108, BranchKind::Return, true});
    t.append({0x108, 0x080, BranchKind::Conditional, false});
    t.append({0x10c, 0x100, BranchKind::Jump, true});
    t.append({0x100, 0x180, BranchKind::Conditional, true});
    return t;
}

TEST(Driver, PredictsOnlyConditionals)
{
    Probe probe;
    auto result = run(mixedTrace(), probe);
    EXPECT_EQ(probe.predicts, 3);
    EXPECT_EQ(probe.updates, 3);
    EXPECT_EQ(probe.observes, 3);
    EXPECT_EQ(result.dynamicBranches, 3u);
}

TEST(Driver, CountsCorrectPredictions)
{
    AlwaysTaken taken;
    auto result = run(mixedTrace(), taken);
    EXPECT_EQ(result.dynamicBranches, 3u);
    EXPECT_EQ(result.correct, 2u);
    EXPECT_NEAR(result.accuracyPercent(), 200.0 / 3.0, 1e-9);
    EXPECT_NEAR(result.mispredictPercent(), 100.0 / 3.0, 1e-9);
}

TEST(Driver, LedgerMatchesAggregate)
{
    AlwaysTaken taken;
    Ledger ledger;
    auto result = run(mixedTrace(), taken, &ledger);
    EXPECT_EQ(ledger.dynamic(), result.dynamicBranches);
    EXPECT_EQ(ledger.correct(), result.correct);
    auto b100 = ledger.branch(0x100);
    EXPECT_EQ(b100.execs, 2u);
    EXPECT_EQ(b100.correct, 2u);
    EXPECT_EQ(b100.taken, 2u);
    auto b108 = ledger.branch(0x108);
    EXPECT_EQ(b108.execs, 1u);
    EXPECT_EQ(b108.correct, 0u);
}

TEST(Driver, RunAllMatchesIndividualRuns)
{
    auto trace = workload::biasedTrace(0x100, 0.7, 2000, 3);
    AlwaysTaken t1, t2;
    AlwaysNotTaken n1, n2;

    auto res_t = run(trace, t1);
    auto res_n = run(trace, n1);

    std::vector<predictor::Predictor *> preds = {&t2, &n2};
    std::vector<Ledger> ledgers;
    auto all = runAll(trace, preds, &ledgers);
    ASSERT_EQ(all.size(), 2u);
    EXPECT_EQ(all[0].correct, res_t.correct);
    EXPECT_EQ(all[1].correct, res_n.correct);
    EXPECT_EQ(ledgers[0].correct(), res_t.correct);
    // Complementary predictors cover every branch exactly once.
    EXPECT_EQ(all[0].correct + all[1].correct, all[0].dynamicBranches);
}

TEST(Driver, RunAllDeliversObserves)
{
    Probe a, b;
    std::vector<predictor::Predictor *> preds = {&a, &b};
    runAll(mixedTrace(), preds);
    EXPECT_EQ(a.observes, 3);
    EXPECT_EQ(b.observes, 3);
}

TEST(Driver, EmptyTraceGivesUndefinedAccuracy)
{
    trace::Trace empty;
    AlwaysTaken pred;
    auto result = run(empty, pred);
    EXPECT_EQ(result.dynamicBranches, 0u);
    // No conditional was predicted, so accuracy is N/A — NaN, not a
    // misleading 0% — and defined() lets rankings skip the result.
    EXPECT_FALSE(result.defined());
    EXPECT_TRUE(std::isnan(result.accuracyPercent()));
    EXPECT_TRUE(std::isnan(result.mispredictPercent()));
}

TEST(Driver, NonConditionalOnlyTraceGivesUndefinedAccuracy)
{
    trace::Trace t("jumps-only", 1);
    t.append({0x100, 0x200, trace::BranchKind::Jump, true});
    t.append({0x104, 0x300, trace::BranchKind::Call, true});
    t.append({0x108, 0x400, trace::BranchKind::Return, true});
    AlwaysTaken pred;
    auto result = run(t, pred);
    EXPECT_EQ(result.dynamicBranches, 0u);
    EXPECT_FALSE(result.defined());
    EXPECT_TRUE(std::isnan(result.accuracyPercent()));
}

TEST(Ledger, RecordAccumulates)
{
    Ledger ledger;
    ledger.record(0x100, true, true);
    ledger.record(0x100, false, false);
    ledger.record(0x100, true, true);
    auto tally = ledger.branch(0x100);
    EXPECT_EQ(tally.execs, 3u);
    EXPECT_EQ(tally.taken, 2u);
    EXPECT_EQ(tally.correct, 2u);
    EXPECT_NEAR(tally.accuracy(), 2.0 / 3.0, 1e-12);
}

TEST(Ledger, SetTallyOverwrites)
{
    Ledger ledger;
    ledger.record(0x100, true, false);
    ledger.setTally(0x100, 10, 9, 5);
    auto tally = ledger.branch(0x100);
    EXPECT_EQ(tally.execs, 10u);
    EXPECT_EQ(tally.correct, 9u);
    EXPECT_EQ(tally.taken, 5u);
}

TEST(Ledger, UnknownBranchIsZeroTally)
{
    Ledger ledger;
    auto tally = ledger.branch(0x1234);
    EXPECT_EQ(tally.execs, 0u);
    EXPECT_DOUBLE_EQ(tally.accuracy(), 0.0);
}

TEST(Ledger, AccuracyPercentAggregates)
{
    Ledger ledger;
    ledger.setTally(0x100, 10, 10, 10);
    ledger.setTally(0x200, 10, 5, 0);
    EXPECT_DOUBLE_EQ(ledger.accuracyPercent(), 75.0);
    EXPECT_EQ(ledger.staticBranches(), 2u);
}

TEST(Ledger, BestOfTakesPerBranchMax)
{
    Ledger a, b;
    a.setTally(0x100, 10, 8, 5);
    b.setTally(0x100, 10, 3, 5);
    a.setTally(0x200, 10, 2, 5);
    b.setTally(0x200, 10, 9, 5);
    EXPECT_DOUBLE_EQ(bestOfAccuracyPercent(a, b), 85.0);
}

TEST(LedgerDeath, BestOfRejectsMismatchedTraces)
{
    Ledger a, b;
    a.setTally(0x100, 10, 8, 5);
    b.setTally(0x100, 7, 3, 5);
    EXPECT_DEATH(bestOfAccuracyPercent(a, b), "different traces");
}

} // namespace
} // namespace copra::sim
