/**
 * @file
 * Unit tests for the frontier workload families (workload/frontier.hpp):
 * suite composition, deterministic generation, exact conditional
 * budgets, dispatch through makeBenchmarkTrace, and the structural
 * signatures that make each family a distinct stressor.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/characterize.hpp"
#include "workload/frontier.hpp"
#include "workload/profiles.hpp"

namespace copra::workload {
namespace {

uint64_t
countKind(const trace::Trace &t, trace::BranchKind kind)
{
    uint64_t n = 0;
    for (const auto &rec : t.records())
        if (rec.kind == kind)
            ++n;
    return n;
}

TEST(FrontierNames, SuiteIsPaperPlusFrontier)
{
    const auto &frontier = frontierNames();
    ASSERT_EQ(frontier.size(), 3u);
    EXPECT_EQ(frontier[0], "interp");
    EXPECT_EQ(frontier[1], "datadep");
    EXPECT_EQ(frontier[2], "nestloop");
    EXPECT_EQ(frontierShortNames().size(), frontier.size());

    const auto &suite = workloadSuiteNames();
    const auto &paper = benchmarkNames();
    ASSERT_EQ(suite.size(), paper.size() + frontier.size());
    EXPECT_TRUE(std::equal(paper.begin(), paper.end(), suite.begin()));
    EXPECT_TRUE(std::equal(frontier.begin(), frontier.end(),
                           suite.begin() + paper.size()));
    EXPECT_EQ(workloadSuiteShortNames().size(), suite.size());

    for (const std::string &name : frontier)
        EXPECT_TRUE(isFrontierWorkload(name)) << name;
    for (const std::string &name : paper)
        EXPECT_FALSE(isFrontierWorkload(name)) << name;
}

TEST(FrontierGeneration, IsDeterministicPerSeed)
{
    for (const std::string &name : frontierNames()) {
        trace::Trace a = makeFrontierTrace(name, 5000, 3);
        trace::Trace b = makeFrontierTrace(name, 5000, 3);
        ASSERT_EQ(a.size(), b.size()) << name;
        for (size_t i = 0; i < a.size(); ++i)
            ASSERT_EQ(a[i], b[i]) << name << " record " << i;

        trace::Trace c = makeFrontierTrace(name, 5000, 4);
        bool differs = a.size() != c.size();
        for (size_t i = 0; !differs && i < a.size(); ++i)
            differs = !(a[i] == c[i]);
        EXPECT_TRUE(differs) << name << ": seed must matter";
    }
}

TEST(FrontierGeneration, HitsTheConditionalBudgetExactly)
{
    for (const std::string &name : frontierNames()) {
        for (uint64_t branches : {1000u, 7777u}) {
            trace::Trace t = makeFrontierTrace(name, branches, 0);
            EXPECT_EQ(t.conditionalCount(), branches)
                << name << " @ " << branches;
            EXPECT_GE(t.size(), branches) << name;
            EXPECT_EQ(t.name(), name);
        }
    }
}

TEST(FrontierGeneration, DispatchesThroughMakeBenchmarkTrace)
{
    for (const std::string &name : frontierNames()) {
        trace::Trace direct = makeFrontierTrace(name, 3000, 5);
        trace::Trace routed = makeBenchmarkTrace(name, 3000, 5);
        ASSERT_EQ(direct.size(), routed.size()) << name;
        for (size_t i = 0; i < direct.size(); ++i)
            ASSERT_EQ(direct[i], routed[i]) << name << " record " << i;
    }
}

TEST(FrontierStructure, InterpIsDispatchShaped)
{
    // VM dispatch: compare chains plus indirect-style jumps back to the
    // dispatcher, so the trace is jump-rich with a wide static
    // conditional footprint.
    trace::Trace t = makeFrontierTrace("interp", 20000, 0);
    EXPECT_GT(countKind(t, trace::BranchKind::Jump), 1000u);
    EXPECT_GT(t.soa().staticCount(), 15u);
}

TEST(FrontierStructure, DatadepIsCallWrappedAndNarrow)
{
    // Data-dependent scans: a handful of static branches driven by
    // value streams, wrapped in call/return pairs per segment.
    trace::Trace t = makeFrontierTrace("datadep", 20000, 0);
    uint64_t calls = countKind(t, trace::BranchKind::Call);
    uint64_t rets = countKind(t, trace::BranchKind::Return);
    EXPECT_GT(calls, 10u);
    // Pairs balance except for a call whose segment the conditional
    // budget truncated (the emitter stops at the budget exactly).
    EXPECT_LE(calls - rets, 1u);
    EXPECT_LT(t.soa().staticCount(), 12u);
}

TEST(FrontierStructure, NestloopIsHistoryPredictable)
{
    // Nested counted loops and long-period patterns: outcomes look
    // mixed without context but are near-deterministic given history —
    // entropy must collapse as the conditioning window grows.
    trace::Trace t = makeFrontierTrace("nestloop", 20000, 0);
    double h0 = core::globalConditionedEntropyBits(t, 0);
    double h8 = core::globalConditionedEntropyBits(t, 8);
    EXPECT_GT(h0, 0.5);
    EXPECT_LT(h8, 0.5 * h0);
    EXPECT_LT(t.soa().staticCount(), 12u);
}

} // namespace
} // namespace copra::workload
