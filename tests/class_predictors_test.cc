/**
 * @file
 * Unit tests for the per-address class predictors: loop, block-pattern,
 * and fixed-length-pattern (paper §4.1).
 */

#include <gtest/gtest.h>

#include "predictor/block_pattern.hpp"
#include "predictor/fixed_pattern.hpp"
#include "predictor/loop_predictor.hpp"
#include "sim/driver.hpp"
#include "workload/patterns.hpp"

namespace copra::predictor {
namespace {

trace::BranchRecord
cond(uint64_t pc, bool taken)
{
    return {pc, pc + 64, trace::BranchKind::Conditional, taken};
}

/** Accuracy of @p pred on @p trace restricted to branch @p pc. */
double
branchAccuracy(Predictor &pred, const trace::Trace &trace, uint64_t pc)
{
    sim::Ledger ledger;
    sim::run(trace, pred, &ledger);
    return 100.0 * ledger.branch(pc).accuracy();
}

class LoopTrips : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(LoopTrips, ForTypePredictedPerfectlyAfterFirstTrip)
{
    uint32_t trip = GetParam();
    LoopPredictor pred;
    auto trace = workload::loopTrace(0x100, trip, 50);
    sim::Ledger ledger;
    sim::run(trace, pred, &ledger);
    auto tally = ledger.branch(0x100);
    // Mispredictions are confined to the first one or two invocations.
    EXPECT_GE(tally.correct + 2 * trip + 2, tally.execs)
        << "trip=" << trip;
}

TEST_P(LoopTrips, WhileTypePredictedPerfectlyAfterFirstTrip)
{
    uint32_t trip = GetParam();
    LoopPredictor pred;
    auto trace = workload::whileTrace(0x100, trip, 50);
    sim::Ledger ledger;
    sim::run(trace, pred, &ledger);
    auto tally = ledger.branch(0x100);
    EXPECT_GE(tally.correct + 2 * (trip + 1) + 2, tally.execs)
        << "trip=" << trip;
}

INSTANTIATE_TEST_SUITE_P(Trips, LoopTrips,
                         ::testing::Values(2u, 3u, 5u, 17u, 100u, 254u));

TEST(LoopPredictor, AdaptsWhenTripCountChanges)
{
    LoopPredictor pred;
    // 30 invocations at trip 5, then 30 at trip 9.
    auto first = workload::loopTrace(0x100, 5, 30);
    auto second = workload::loopTrace(0x100, 9, 30);
    trace::Trace combined("switch");
    for (const auto &rec : first.records())
        combined.append(rec);
    for (const auto &rec : second.records())
        combined.append(rec);
    sim::Ledger ledger;
    sim::run(combined, pred, &ledger);
    auto tally = ledger.branch(0x100);
    // One mispredicted exit at the transition plus initial warmup.
    EXPECT_GE(tally.correct + 12, tally.execs);
}

TEST(LoopPredictor, StateIsPerBranch)
{
    LoopPredictor pred;
    auto a = workload::loopTrace(0x100, 3, 40);
    auto b = workload::loopTrace(0x200, 7, 40);
    auto trace = workload::interleave({a, b});
    sim::Ledger ledger;
    sim::run(trace, pred, &ledger);
    EXPECT_GT(100.0 * ledger.branch(0x100).accuracy(), 90.0);
    EXPECT_GT(100.0 * ledger.branch(0x200).accuracy(), 90.0);
}

TEST(LoopPredictor, StateAccessorReflectsTraining)
{
    LoopPredictor pred;
    auto trace = workload::loopTrace(0x100, 4, 5);
    sim::run(trace, pred);
    LoopState st = pred.state(0x100);
    EXPECT_TRUE(st.seen);
    EXPECT_TRUE(st.dir); // body direction is taken for for-type
    EXPECT_EQ(st.trip, 3u); // taken 3 times per invocation
    EXPECT_EQ(pred.state(0x999).seen, false);
}

TEST(LoopPredictor, ResetForgets)
{
    LoopPredictor pred;
    pred.update(cond(0x100, true), true);
    pred.reset();
    EXPECT_FALSE(pred.state(0x100).seen);
}

TEST(LoopPredictor, RunLengthSaturatesAt255)
{
    LoopPredictor pred;
    for (int i = 0; i < 1000; ++i)
        pred.update(cond(0x100, true), true);
    EXPECT_EQ(pred.state(0x100).run, 255u);
}

struct BlockCase
{
    uint32_t n;
    uint32_t m;
};

class BlockGrid : public ::testing::TestWithParam<BlockCase>
{
};

TEST_P(BlockGrid, BlockPatternPredictedAfterOnePeriod)
{
    auto [n, m] = GetParam();
    BlockPatternPredictor pred;
    auto trace = workload::blockPatternTrace(0x100, n, m, 40);
    sim::Ledger ledger;
    sim::run(trace, pred, &ledger);
    auto tally = ledger.branch(0x100);
    // Warmup costs at most two full periods.
    EXPECT_GE(tally.correct + 2 * (n + m) + 2, tally.execs)
        << "n=" << n << " m=" << m;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BlockGrid,
    ::testing::Values(BlockCase{1, 1}, BlockCase{2, 2}, BlockCase{3, 1},
                      BlockCase{1, 5}, BlockCase{7, 4}, BlockCase{20, 11},
                      BlockCase{100, 3}));

TEST(BlockPattern, LoopPredictorMissesWhatBlockCatches)
{
    // n=4, m=3 block pattern: the loop predictor assumes a single
    // opposite outcome, so it mispredicts inside every not-taken block;
    // the block predictor is near perfect.
    auto trace = workload::blockPatternTrace(0x100, 4, 3, 60);
    LoopPredictor loop;
    BlockPatternPredictor block;
    double loop_acc = branchAccuracy(loop, trace, 0x100);
    double block_acc = branchAccuracy(block, trace, 0x100);
    EXPECT_GT(block_acc, 95.0);
    EXPECT_GT(block_acc, loop_acc + 10.0);
}

TEST(BlockPattern, StateAccessor)
{
    BlockPatternPredictor pred;
    auto trace = workload::blockPatternTrace(0x100, 3, 2, 10);
    sim::run(trace, pred);
    BlockState st = pred.state(0x100);
    EXPECT_TRUE(st.seen);
    EXPECT_EQ(st.lastRun[1], 3u);
    EXPECT_EQ(st.lastRun[0], 2u);
}

TEST(BlockPattern, ResetForgets)
{
    BlockPatternPredictor pred;
    pred.update(cond(0x100, true), true);
    pred.reset();
    EXPECT_FALSE(pred.state(0x100).seen);
}

TEST(OutcomeRing, KAgoIndexing)
{
    OutcomeRing ring;
    ring.push(true);  // 3 ago
    ring.push(false); // 2 ago
    ring.push(true);  // 1 ago
    EXPECT_TRUE(ring.kAgo(1));
    EXPECT_FALSE(ring.kAgo(2));
    EXPECT_TRUE(ring.kAgo(3));
    // Cold beyond recorded depth: returns the default.
    EXPECT_TRUE(ring.kAgo(4, true));
    EXPECT_FALSE(ring.kAgo(4, false));
}

class FixedK : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(FixedK, PerfectOnPeriodKPattern)
{
    unsigned k = GetParam();
    // Build an arbitrary pattern of length k, not all same.
    std::vector<bool> pattern;
    for (unsigned i = 0; i < k; ++i)
        pattern.push_back((i * 7 + 1) % 3 != 0);
    FixedPattern pred(k);
    auto trace = workload::periodicTrace(0x100, pattern, 200);
    sim::Ledger ledger;
    sim::run(trace, pred, &ledger);
    auto tally = ledger.branch(0x100);
    // Only the first k predictions (cold ring) may miss.
    EXPECT_GE(tally.correct + k, tally.execs) << "k=" << k;
}

INSTANTIATE_TEST_SUITE_P(Periods, FixedK,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u,
                                           32u));

TEST(FixedPattern, WrongKFailsOnPrimePeriod)
{
    // Period-7 pattern with alternating-ish content: k=3 must do poorly.
    std::vector<bool> pattern = {true, false, true, true, false, false,
                                 true};
    FixedPattern pred(3);
    auto trace = workload::periodicTrace(0x100, pattern, 300);
    auto result = sim::run(trace, pred);
    EXPECT_LT(result.accuracyPercent(), 80.0);
}

TEST(FixedPatternBank, FindsTheTruePeriod)
{
    std::vector<bool> pattern = {true, true, false, true, false};
    FixedPatternBank bank;
    auto trace = workload::periodicTrace(0x100, pattern, 200);
    for (const auto &rec : trace.records())
        bank.observe(rec.pc, rec.taken);
    // k = 5 (or a multiple: 10, ...) is optimal; bestK returns the
    // smallest best, which must be a multiple of 5.
    EXPECT_EQ(bank.bestK(0x100) % 5, 0u);
    EXPECT_GE(bank.bestCorrect(0x100) + 32, 1000u);
}

TEST(FixedPatternBank, UnseenBranchDefaults)
{
    FixedPatternBank bank;
    EXPECT_EQ(bank.bestCorrect(0x100), 0u);
    EXPECT_EQ(bank.bestK(0x100), 1u);
}

TEST(FixedPattern, ResetForgets)
{
    FixedPattern pred(2);
    pred.update(cond(0x100, true), true);
    pred.update(cond(0x100, true), true);
    pred.reset();
    // Cold prediction defaults to taken.
    EXPECT_TRUE(pred.predict(cond(0x100, false)));
}

} // namespace
} // namespace copra::predictor
