/**
 * @file
 * Unit tests for copra_lint's cross-TU call-graph pass (DESIGN.md
 * §15): COPRA_HOT mark binding, virtual fan-out to overriders,
 * out-of-line method resolution, hot-region closure and provenance,
 * the unresolved-callee report, and the byte-to-display column
 * conversion behind the SARIF/JSON emitters.
 *
 * Lint directives and COPRA_HOT marks appear below only inside string
 * literals; the linter's lexer skips strings, so this file cannot trip
 * the rules it exercises when the tree gate walks tests/.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "copra_lint/lint.hpp"

namespace {

using copra::lint::buildCallGraph;
using copra::lint::buildSemaModel;
using copra::lint::CallGraph;
using copra::lint::CgFunction;
using copra::lint::displayColumn;
using copra::lint::FileScan;
using copra::lint::Finding;
using copra::lint::runCallGraphRules;
using copra::lint::scanSource;
using copra::lint::SemaModel;

/** Scan a set of (rel, source) pairs into FileScans. */
std::vector<FileScan>
scanAll(const std::vector<std::pair<std::string, std::string>> &files)
{
    std::vector<FileScan> scans;
    for (const auto &[rel, src] : files)
        scans.push_back(scanSource(rel, src));
    return scans;
}

/** Index of the function labelled @p label, or npos. */
size_t
functionIndex(const CallGraph &cg, const std::string &label)
{
    for (size_t i = 0; i < cg.functions.size(); ++i)
        if (cg.functions[i].label() == label)
            return i;
    return std::string::npos;
}

bool
isHot(const CallGraph &cg, const std::string &label)
{
    size_t i = functionIndex(cg, label);
    return i != std::string::npos && cg.hot[i];
}

int
countRule(const std::vector<Finding> &findings, const std::string &rule)
{
    int n = 0;
    for (const Finding &f : findings)
        if (f.rule == rule)
            ++n;
    return n;
}

/**
 * A two-file hierarchy: a COPRA_HOT mark on the base virtual must root
 * the base body, fan out to the derived overrider in another TU, and
 * pull helpers reached from either body into the region — while a
 * function nobody hot calls stays out.
 */
std::vector<FileScan>
hierarchyScans()
{
    return scanAll({
        {"src/predictor/base.hpp",
         "#pragma once\n"
         "class HotBase\n"
         "{\n"
         "  public:\n"
         "    COPRA_HOT virtual int step(int x) noexcept;\n"
         "    virtual ~HotBase() = default;\n"
         "};\n"
         "class HotDerived : public HotBase\n"
         "{\n"
         "  public:\n"
         "    int step(int x) noexcept override;\n"
         "};\n"},
        {"src/predictor/base.cc",
         "#include \"predictor/base.hpp\"\n"
         "int\n"
         "helperA(int x) noexcept\n"
         "{\n"
         "    return x + 1;\n"
         "}\n"
         "int\n"
         "coldHelper(int x)\n"
         "{\n"
         "    return x - 1;\n"
         "}\n"
         "int\n"
         "HotBase::step(int x) noexcept\n"
         "{\n"
         "    return helperA(x);\n"
         "}\n"},
        {"src/predictor/derived.cc",
         "#include \"predictor/base.hpp\"\n"
         "int\n"
         "helperB(int x) noexcept\n"
         "{\n"
         "    return x * 2;\n"
         "}\n"
         "int\n"
         "HotDerived::step(int x) noexcept\n"
         "{\n"
         "    return helperB(x);\n"
         "}\n"},
    });
}

TEST(CallGraph, MarkOnBaseVirtualFansOutToOverriders)
{
    std::vector<FileScan> scans = hierarchyScans();
    SemaModel model = buildSemaModel(scans);
    CallGraph cg = buildCallGraph(model, scans);

    ASSERT_EQ(cg.marks.size(), 1u);
    EXPECT_EQ(cg.marks[0].cls, "HotBase");
    EXPECT_EQ(cg.marks[0].method, "step");
    EXPECT_TRUE(cg.markBound[0]);

    // Both out-of-line bodies join the region, each dragging its own
    // TU-local helper in; the uncalled helper stays cold.
    EXPECT_TRUE(isHot(cg, "HotBase::step"));
    EXPECT_TRUE(isHot(cg, "HotDerived::step"));
    EXPECT_TRUE(isHot(cg, "helperA"));
    EXPECT_TRUE(isHot(cg, "helperB"));
    EXPECT_FALSE(isHot(cg, "coldHelper"));
}

TEST(CallGraph, ProvenanceNamesTheRootAndRulesSeeTheRegion)
{
    std::vector<FileScan> scans = hierarchyScans();
    SemaModel model = buildSemaModel(scans);
    CallGraph cg = buildCallGraph(model, scans);

    size_t helper = functionIndex(cg, "helperA");
    ASSERT_NE(helper, std::string::npos);
    EXPECT_NE(cg.hotVia[helper].find("HotBase::step"),
              std::string::npos);

    // coldHelper lacks noexcept but is outside the region: no finding.
    // The hierarchy itself is clean.
    std::vector<Finding> findings =
        runCallGraphRules(cg, model, scans);
    EXPECT_EQ(findings.size(), 0u)
        << (findings.empty() ? "" : findings[0].message);
}

TEST(CallGraph, HotRegionViolationsFire)
{
    std::vector<FileScan> scans = scanAll({
        {"src/sim/hot.cc",
         "COPRA_HOT int\n"
         "hotLeaf(int x) noexcept\n"
         "{\n"
         "    auto *p = new int(x);\n"
         "    printf(\"x\");\n"
         "    return *p;\n"
         "}\n"
         "int\n"
         "missingNoexcept(int x)\n"
         "{\n"
         "    return x;\n"
         "}\n"
         "COPRA_HOT int\n"
         "hotCaller(int x) noexcept\n"
         "{\n"
         "    return missingNoexcept(x);\n"
         "}\n"},
    });
    SemaModel model = buildSemaModel(scans);
    CallGraph cg = buildCallGraph(model, scans);
    std::vector<Finding> findings =
        runCallGraphRules(cg, model, scans);

    EXPECT_EQ(countRule(findings, "hot-alloc"), 1);
    EXPECT_EQ(countRule(findings, "hot-io"), 1);
    // missingNoexcept joined the region through hotCaller, so its head
    // fires hot-throw despite carrying no mark of its own.
    EXPECT_EQ(countRule(findings, "hot-throw"), 1);
}

TEST(CallGraph, UnresolvableCalleeIsReportedNotIgnored)
{
    std::vector<FileScan> scans = scanAll({
        {"src/sim/hot.cc",
         "COPRA_HOT int\n"
         "hotEntry(int x) noexcept\n"
         "{\n"
         "    return mysteryCall(x);\n"
         "}\n"},
    });
    SemaModel model = buildSemaModel(scans);
    CallGraph cg = buildCallGraph(model, scans);
    std::vector<Finding> findings =
        runCallGraphRules(cg, model, scans);
    ASSERT_EQ(countRule(findings, "hot-unresolved"), 1);
    for (const Finding &f : findings)
        if (f.rule == "hot-unresolved")
            EXPECT_NE(f.message.find("mysteryCall"), std::string::npos);
}

TEST(CallGraph, MarkBindingNothingIsReported)
{
    std::vector<FileScan> scans = scanAll({
        {"src/sim/orphan.hpp",
         "#pragma once\n"
         "class Orphan\n"
         "{\n"
         "  public:\n"
         "    COPRA_HOT void neverDefined() noexcept;\n"
         "};\n"},
    });
    SemaModel model = buildSemaModel(scans);
    CallGraph cg = buildCallGraph(model, scans);
    ASSERT_EQ(cg.marks.size(), 1u);
    EXPECT_FALSE(cg.markBound[0]);
    std::vector<Finding> findings =
        runCallGraphRules(cg, model, scans);
    EXPECT_EQ(countRule(findings, "hot-unresolved"), 1);
}

TEST(CallGraph, CheckDirIsOutsideTheRegion)
{
    // The same marked function under src/check/ must not join the
    // region: harness and reference-model code is clarity-first.
    std::vector<FileScan> scans = scanAll({
        {"src/check/ref.cc",
         "COPRA_HOT int\n"
         "refStep(int x) noexcept\n"
         "{\n"
         "    auto *p = new int(x);\n"
         "    return *p;\n"
         "}\n"},
    });
    SemaModel model = buildSemaModel(scans);
    CallGraph cg = buildCallGraph(model, scans);
    std::vector<Finding> findings =
        runCallGraphRules(cg, model, scans);
    EXPECT_EQ(countRule(findings, "hot-alloc"), 0);
    EXPECT_FALSE(isHot(cg, "refStep"));
}

TEST(DisplayColumn, TabsExpandToEightWideStops)
{
    // A finding 1 byte past a leading tab sits at display column 9.
    EXPECT_EQ(displayColumn("\tint x;", 2), 9);
    // Two tabs: the second jumps from column 9 to 17.
    EXPECT_EQ(displayColumn("\t\tint x;", 3), 17);
    // A tab mid-line advances to the *next* stop, not by eight.
    EXPECT_EQ(displayColumn("ab\tcd", 4), 9);
}

TEST(DisplayColumn, Utf8ContinuationBytesDoNotAdvance)
{
    // "é" is two bytes (0xC3 0xA9); the byte after it is column 3.
    std::string line = "\xC3\xA9x";
    EXPECT_EQ(displayColumn(line, 3), 2);
    // Plain ASCII is the identity.
    EXPECT_EQ(displayColumn("abcdef", 4), 4);
}

} // namespace
