/**
 * @file
 * Unit tests for the foreign-trace ingestion frontend (trace/ingest.hpp):
 * the versioned text grammar, the CSV dialect (including out-of-order
 * index normalization), the CBP-style binary reader with its corruption
 * and endianness tripwires, and the ingest → cache-v2 → SoA round trip.
 * Also pins the ledger's packed-tally flush across the 2^21 field
 * boundary, since ingested foreign traces are the first consumers long
 * enough to cross it with a single static branch.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <sstream>

#include "predictor/factory.hpp"
#include "sim/driver.hpp"
#include "trace/ingest.hpp"
#include "trace/trace_io.hpp"

namespace copra::trace {
namespace {

Trace
ingestString(const std::string &text, IngestReport &report,
             IngestOptions options = {})
{
    std::istringstream in(text);
    return ingestStream(in, options, report);
}

/** Little-endian CBP-style binary image builder for the reader tests. */
struct CbpImage
{
    std::string bytes;

    explicit CbpImage(uint64_t count, uint32_t version = 1,
                      uint32_t flags = 0, const char *magic = "CBPTRACE")
    {
        bytes.assign(magic, magic + 8);
        appendLe32(version);
        appendLe32(flags);
        appendLe64(count);
    }

    void
    appendLe32(uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            bytes.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }

    void
    appendLe64(uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            bytes.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }

    void
    record(uint64_t pc, uint64_t target, uint8_t type, uint8_t taken)
    {
        appendLe64(pc);
        appendLe64(target);
        bytes.push_back(static_cast<char>(type));
        bytes.push_back(static_cast<char>(taken));
    }
};

Trace
ingestCbp(const CbpImage &image, IngestReport &report)
{
    IngestOptions options;
    options.format = IngestFormat::Cbp;
    return ingestString(image.bytes, report, options);
}

TEST(IngestText, ParsesVersionedGrammar)
{
    IngestReport report;
    Trace t = ingestString("# copra-branch-trace v1\n"
                           "# a comment line\n"
                           "# name foreign\n"
                           "# seed 42\n"
                           "\n"
                           "cond 0x100 0x180 T\n"
                           "cond 0x104 0x200 N\r\n" // CRLF capture
                           "jump 0x108 0x100 T\n"
                           "call 0x10c 0x400 1\n"
                           "cond 0x404 0x420 true\n"
                           "cond 0x408 0x430 false\n"
                           "ret 0x40c 0x110 T\n",
                           report);
    EXPECT_EQ(t.name(), "foreign");
    EXPECT_EQ(t.seed(), 42u);
    ASSERT_EQ(t.size(), 7u);
    EXPECT_EQ(t.conditionalCount(), 4u);
    EXPECT_EQ(report.format, IngestFormat::Text);
    EXPECT_EQ(report.records, 7u);
    EXPECT_EQ(report.conditionals, 4u);
    EXPECT_EQ(report.normalizedTaken, 0u);
    EXPECT_TRUE(report.warnings.empty());
    EXPECT_EQ(t[0], (BranchRecord{0x100, 0x180,
                                  BranchKind::Conditional, true}));
    EXPECT_EQ(t[1], (BranchRecord{0x104, 0x200,
                                  BranchKind::Conditional, false}));
    EXPECT_EQ(t[2], (BranchRecord{0x108, 0x100, BranchKind::Jump, true}));
    EXPECT_EQ(t[4].taken, true);
    EXPECT_EQ(t[5].taken, false);
}

TEST(IngestText, MissingVersionDirectiveWarns)
{
    IngestReport report;
    Trace t = ingestString("cond 0x100 0x180 T\n", report);
    EXPECT_EQ(t.size(), 1u);
    ASSERT_FALSE(report.warnings.empty());
    EXPECT_NE(report.warnings.front().find("copra-branch-trace"),
              std::string::npos);
}

TEST(IngestText, FutureVersionIsRejected)
{
    IngestReport report;
    EXPECT_THROW(ingestString("# copra-branch-trace v2\n"
                              "cond 0x100 0x180 T\n",
                              report),
                 std::runtime_error);
}

TEST(IngestText, MalformedLinesAreHardErrors)
{
    IngestReport report;
    // Trailing field.
    EXPECT_THROW(ingestString("cond 0x100 0x180 T extra\n", report),
                 std::runtime_error);
    // Unknown kind.
    EXPECT_THROW(ingestString("branch 0x100 0x180 T\n", report),
                 std::runtime_error);
    // Unparseable address.
    EXPECT_THROW(ingestString("cond 0xzz 0x180 T\n", report),
                 std::runtime_error);
    // Missing outcome.
    EXPECT_THROW(ingestString("cond 0x100 0x180\n", report),
                 std::runtime_error);
    // Unknown outcome spelling.
    EXPECT_THROW(ingestString("cond 0x100 0x180 yes\n", report),
                 std::runtime_error);
}

TEST(IngestText, NormalizesUnconditionalOutcomes)
{
    // Some producers emit N for never-taken-encoded unconditionals; the
    // normalizer coerces them taken and counts the repairs.
    IngestReport report;
    Trace t = ingestString("jump 0x100 0x200 N\n"
                           "cond 0x200 0x220 N\n"
                           "ret 0x204 0x104 0\n",
                           report);
    EXPECT_TRUE(t[0].taken);
    EXPECT_FALSE(t[1].taken); // conditionals are left alone
    EXPECT_TRUE(t[2].taken);
    EXPECT_EQ(report.normalizedTaken, 2u);
}

TEST(IngestText, OptionsOverrideDirectives)
{
    IngestOptions options;
    options.name = "renamed";
    options.seed = 7;
    options.hasSeed = true;
    IngestReport report;
    Trace t = ingestString("# name original\n"
                           "# seed 42\n"
                           "cond 0x100 0x180 T\n",
                           report, options);
    EXPECT_EQ(t.name(), "renamed");
    EXPECT_EQ(t.seed(), 7u);
}

TEST(IngestText, ZeroConditionalTraceWarns)
{
    IngestReport report;
    Trace t = ingestString("jump 0x100 0x200 T\n"
                           "jump 0x200 0x100 T\n",
                           report);
    EXPECT_EQ(t.conditionalCount(), 0u);
    bool warned = false;
    for (const std::string &w : report.warnings)
        warned |= w.find("conditional") != std::string::npos;
    EXPECT_TRUE(warned);
}

TEST(IngestCsv, ParsesWithAndWithoutHeader)
{
    IngestReport report;
    Trace with_header = ingestString("kind,pc,target,taken\n"
                                     "cond,0x100,0x180,T\n"
                                     "jump,0x108,0x100,T\n",
                                     report);
    EXPECT_EQ(report.format, IngestFormat::Csv);
    ASSERT_EQ(with_header.size(), 2u);
    EXPECT_EQ(with_header[0].pc, 0x100u);

    Trace headerless = ingestString("cond, 0x100, 0x180, T\n"
                                    "jump, 0x108, 0x100, T\n",
                                    report);
    ASSERT_EQ(headerless.size(), 2u);
    EXPECT_EQ(headerless[1].kind, BranchKind::Jump);
}

TEST(IngestCsv, SortsOutOfOrderIndices)
{
    IngestReport report;
    Trace t = ingestString("index,kind,pc,target,taken\n"
                           "2,cond,0x300,0x380,T\n"
                           "0,cond,0x100,0x180,N\n"
                           "1,cond,0x200,0x280,T\n",
                           report);
    ASSERT_EQ(t.size(), 3u);
    EXPECT_EQ(t[0].pc, 0x100u);
    EXPECT_EQ(t[1].pc, 0x200u);
    EXPECT_EQ(t[2].pc, 0x300u);
    // All three rows sit away from their arrival position.
    EXPECT_EQ(report.reordered, 3u);
    EXPECT_FALSE(report.warnings.empty());
}

TEST(IngestCsv, DuplicateIndexIsAHardError)
{
    IngestReport report;
    EXPECT_THROW(ingestString("index,kind,pc,target,taken\n"
                              "0,cond,0x100,0x180,T\n"
                              "0,cond,0x200,0x280,T\n",
                              report),
                 std::runtime_error);
}

TEST(IngestCbp, DecodesAndFoldsIndirects)
{
    CbpImage image(5);
    image.record(0x100, 0x180, 0, 1); // conditional taken
    image.record(0x104, 0x200, 1, 1); // direct jump
    image.record(0x108, 0x300, 2, 1); // indirect jump -> Jump
    image.record(0x10c, 0x400, 3, 1); // call
    image.record(0x110, 0x500, 4, 1); // indirect call -> Call
    IngestReport report;
    Trace t = ingestCbp(image, report);
    ASSERT_EQ(t.size(), 5u);
    EXPECT_EQ(report.format, IngestFormat::Cbp);
    EXPECT_EQ(t[0].kind, BranchKind::Conditional);
    EXPECT_EQ(t[1].kind, BranchKind::Jump);
    EXPECT_EQ(t[2].kind, BranchKind::Jump);
    EXPECT_EQ(t[3].kind, BranchKind::Call);
    EXPECT_EQ(t[4].kind, BranchKind::Call);
    EXPECT_EQ(t.conditionalCount(), 1u);
}

TEST(IngestCbp, RejectsGarbageMagic)
{
    CbpImage image(1, 1, 0, "NOTATRCE");
    image.record(0x100, 0x180, 0, 1);
    IngestReport report;
    EXPECT_THROW(ingestCbp(image, report), std::runtime_error);
}

TEST(IngestCbp, RejectsTruncatedPayload)
{
    CbpImage image(2);
    image.record(0x100, 0x180, 0, 1); // header promises 2, payload has 1
    IngestReport report;
    EXPECT_THROW(ingestCbp(image, report), std::runtime_error);
}

TEST(IngestCbp, RejectsTruncatedHeader)
{
    CbpImage image(0);
    image.bytes.resize(10);
    IngestReport report;
    EXPECT_THROW(ingestCbp(image, report), std::runtime_error);
}

TEST(IngestCbp, ByteSwappedCountTripsSizeCheck)
{
    // A big-endian producer writes count=1 as 0x0100000000000000;
    // count*18 then disagrees wildly with the payload size, so the
    // size check doubles as the endianness tripwire.
    CbpImage image(1);
    image.record(0x100, 0x180, 0, 1);
    std::string &b = image.bytes;
    for (int i = 0; i < 4; ++i)
        std::swap(b[16 + i], b[23 - i]);
    IngestReport report;
    EXPECT_THROW(ingestCbp(image, report), std::runtime_error);
}

TEST(IngestCbp, RejectsBadTypeAndTakenBytes)
{
    {
        CbpImage image(1);
        image.record(0x100, 0x180, 9, 1); // type out of range
        IngestReport report;
        EXPECT_THROW(ingestCbp(image, report), std::runtime_error);
    }
    {
        CbpImage image(1);
        image.record(0x100, 0x180, 0, 2); // taken byte must be 0/1
        IngestReport report;
        EXPECT_THROW(ingestCbp(image, report), std::runtime_error);
    }
}

TEST(IngestSniff, AutoDetectsAllThreeFormats)
{
    IngestReport report;
    ingestString("cond 0x100 0x180 T\n", report);
    EXPECT_EQ(report.format, IngestFormat::Text);
    ingestString("kind,pc,target,taken\ncond,0x100,0x180,T\n", report);
    EXPECT_EQ(report.format, IngestFormat::Csv);
    CbpImage image(1);
    image.record(0x100, 0x180, 0, 1);
    std::istringstream in(image.bytes);
    IngestOptions options; // format = Auto
    ingestStream(in, options, report);
    EXPECT_EQ(report.format, IngestFormat::Cbp);
}

TEST(IngestRoundTrip, SurvivesCacheV2AndSoA)
{
    IngestReport report;
    std::ostringstream src;
    src << "# copra-branch-trace v1\n# name rt\n# seed 9\n";
    for (int i = 0; i < 500; ++i) {
        src << "cond 0x" << std::hex << (0x1000 + 8 * (i % 7)) << " 0x"
            << (0x2000 + 8 * (i % 7)) << std::dec << ' '
            << (i % 3 ? 'T' : 'N') << '\n';
        if (i % 11 == 0)
            src << "jump 0x3000 0x1000 T\n";
    }
    Trace ingested = ingestString(src.str(), report);

    std::stringstream buf;
    writeBinary(ingested, buf);
    Trace loaded = readBinary(buf);
    ASSERT_EQ(loaded.size(), ingested.size());
    for (size_t i = 0; i < ingested.size(); ++i)
        EXPECT_EQ(loaded[i], ingested[i]) << "record " << i;

    const SoABlocks &sa = ingested.soa();
    const SoABlocks &sb = loaded.soa();
    ASSERT_EQ(sa.size(), sb.size());
    EXPECT_EQ(sa.conditionalCount(), sb.conditionalCount());
    EXPECT_EQ(0, std::memcmp(sa.pc(), sb.pc(),
                             sa.size() * sizeof(uint64_t)));
    EXPECT_EQ(0, std::memcmp(sa.taken(), sb.taken(), sa.size()));
    EXPECT_EQ(0, std::memcmp(sa.kind(), sb.kind(), sa.size()));
}

TEST(IngestLedger, PackedTallyFlushSurvivesTwoPow21Executions)
{
    // The driver packs per-branch execs/taken/correct into 21-bit
    // fields flushed every 2^20 branches. A single static branch
    // executed more than 2^21 times would overflow a field without the
    // flush; long ingested traces are the realistic trigger, so pin
    // exact accounting across that boundary.
    constexpr uint64_t kExecs = (uint64_t(1) << 21) + 5;
    Trace t("flush-boundary", 1);
    for (uint64_t i = 0; i < kExecs; ++i)
        t.append({0x100, 0x180, BranchKind::Conditional, (i & 1) != 0});

    auto pred = predictor::makePredictor("bimodal");
    sim::Ledger ledger;
    sim::RunResult result = sim::run(t, *pred, &ledger);
    EXPECT_EQ(result.dynamicBranches, kExecs);
    sim::BranchTally tally = ledger.branch(0x100);
    EXPECT_EQ(tally.execs, kExecs);
    EXPECT_EQ(tally.taken, kExecs / 2);
    EXPECT_EQ(ledger.dynamic(), kExecs);
    EXPECT_EQ(ledger.correct(), result.correct);
}

} // namespace
} // namespace copra::trace
