#pragma once

/**
 * Corpus: the other half of the planted include cycle; see
 * src__sim__cycle_a.hpp.
 */

#include "sim/cycle_a.hpp"     // expect: include-cycle

namespace copra::sim {

struct CycleB
{
    int b = 0;
};

} // namespace copra::sim
