#pragma once

#include <cstdint>

/**
 * Corpus: the mutation rule's two modes. PlantedBare has no state
 * contract at all (state-decl at the class; its cross-TU update body
 * in planted_state_mutation.cc fires state-mutation there).
 * PlantedConfigMut is contracted but mutates a config-listed member in
 * a prediction-path method.
 */

namespace copra::predictor {

class PlantedBare : public Predictor             // expect: state-decl
{
  public:
    bool predict(const trace::BranchRecord &br) override;
    void update(const trace::BranchRecord &br, bool taken) override;
    void reset() override;

  private:
    int hits_ = 0;
};

class PlantedConfigMut : public Predictor
{
  public:
    bool predict(const trace::BranchRecord &br) override;

    void
    update(const trace::BranchRecord &br, bool taken)
    {
        width_ += 1;                             // expect: state-mutation
    }

    void reset() override;

    uint64_t stateBits() const override;
    void snapshotState(state::Writer &w) const override;
    void restoreState(state::Reader &r) override;

    COPRA_CONFIG_FIELDS(width_);
    COPRA_STATE_FIELDS(table_);

  private:
    int width_ = 0;
    int table_ = 0;
};

} // namespace copra::predictor
