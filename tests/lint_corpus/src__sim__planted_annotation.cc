/**
 * Corpus: malformed directives are findings themselves, and cannot be
 * suppressed. Each bad comment stacks its expectation after a second
 * slash-slash separator on the same line.
 */

namespace copra::sim {

// copra-lint: allow(banned-api) // expect: annotation
int
identity(int x)
{
    return x;
}

// copra-lint: allow(no-such-rule) -- some reason // expect: annotation
// copra-lint: frobnicate the grommets // expect: annotation

} // namespace copra::sim
