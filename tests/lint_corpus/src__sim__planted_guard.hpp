#ifndef COPRA_CORPUS_PLANTED_GUARD_HPP // expect: header-guard
#define COPRA_CORPUS_PLANTED_GUARD_HPP

/**
 * Corpus: a classic macro include guard with no pragma once. Both
 * header-guard findings land on line 1, where the marker sits.
 */

namespace copra::sim {

inline int
answer()
{
    return 42;
}

} // namespace copra::sim

#endif
