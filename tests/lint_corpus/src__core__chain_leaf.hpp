#pragma once

/**
 * Corpus: the leaf of the include-through chain — a perfectly clean
 * core header. It exists so src/sim/chain_mid.hpp has something real
 * in a forbidden-for-sim module to resolve against.
 */

namespace copra::core {

struct ChainLeaf
{
    int experiments = 0;
};

} // namespace copra::core
