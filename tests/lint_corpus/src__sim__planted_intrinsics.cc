/**
 * Corpus: planted raw-SIMD leaks. Intrinsics and their headers are
 * confined to the kernel TUs (kernels_avx2.cc / kernels_neon.cc);
 * anywhere else — this file lints as src/sim/... — every marked line
 * must fire banned-api.
 */

#include <immintrin.h> // expect: banned-api

namespace copra::sim {

int
vectorLeak(const int *a, const int *b)
{
    const __m256i *pa = (const __m256i *)a;  // expect: banned-api
    const __m256i *pb = (const __m256i *)b;  // expect: banned-api
    __m256i va = _mm256_loadu_si256(pa);     // expect: banned-api
    __m256i vb = _mm256_loadu_si256(pb);     // expect: banned-api
    __m256i sum = _mm256_add_epi32(va, vb);  // expect: banned-api
    return _mm256_extract_epi32(sum, 0);     // expect: banned-api
}

} // namespace copra::sim
