/**
 * Corpus: the same clock access as the planted file, but justified as
 * timing-only. The allow() directive must silence the rule, so this
 * file contributes zero findings.
 */

#include <chrono>

namespace copra::sim {

double
phaseSeconds()
{
    // copra-lint: allow(banned-api) -- corpus: timing-only sample
    auto t0 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t0.time_since_epoch()).count();
}

} // namespace copra::sim
