/**
 * Corpus: unordered iteration with a commutative-aggregation
 * justification; the allow() must hold and this file stays clean.
 */

#include <unordered_set>

namespace copra::core {

unsigned long
population(const std::unordered_set<unsigned> &seen)
{
    unsigned long sum = 0;
    // copra-lint: allow(unordered-iter) -- corpus: commutative sum
    for (unsigned v : seen)
        sum += v;
    return sum;
}

} // namespace copra::core
