/**
 * Corpus: every hot-path call-graph rule in firing form. The COPRA_HOT
 * mark on the base virtual roots both the base body and the overrider
 * (virtual fan-out), both defined out of line; the region then reaches
 * the free helper `plantedTally` through an unqualified call. One
 * violation of each rule is planted inside the region:
 * an allocating member call, a lock type, a throw statement, stderr
 * logging, an unresolvable callee, and a hot function whose head
 * forgets noexcept.
 */

namespace copra::predictor {

class PlantedHotBase
{
  public:
    COPRA_HOT virtual uint64_t stepAll(const uint64_t *pcs,
                                       size_t n) noexcept;
    virtual ~PlantedHotBase() = default;

  protected:
    uint64_t seed_ = 0;
};

class PlantedHotDerived : public PlantedHotBase
{
  public:
    uint64_t stepAll(const uint64_t *pcs, size_t n) noexcept override;

  private:
    std::vector<uint64_t> log_;
    Mutex mu_;
};

uint64_t
PlantedHotBase::stepAll(const uint64_t *pcs, size_t n) noexcept
{
    uint64_t sum = seed_;
    for (size_t i = 0; i < n; ++i)
        sum += plantedMix(pcs[i]);               // expect: hot-unresolved
    return sum + plantedTally(pcs, n);
}

uint64_t
PlantedHotDerived::stepAll(const uint64_t *pcs, size_t n) noexcept
{
    log_.push_back(n);                           // expect: hot-alloc
    MutexLock guard(mu_);                        // expect: hot-lock
    if (n == 0)
        throw n;                                 // expect: hot-throw
    warn("planted hot step");                    // expect: hot-io
    return plantedTally(pcs, n);
}

uint64_t                                         // expect: hot-throw
plantedTally(const uint64_t *pcs, size_t n)
{
    uint64_t sum = 0;
    for (size_t i = 0; i < n; ++i)
        sum += pcs[i] >> 2;
    return sum;
}

} // namespace copra::predictor
