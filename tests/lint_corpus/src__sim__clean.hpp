#pragma once

/**
 * Corpus: a well-behaved header — pragma once, every curated std name
 * backed by a direct include, ordered iteration only. Zero findings.
 */

#include <cstdint>
#include <vector>

namespace copra::sim {

struct CleanSample
{
    std::vector<uint64_t> values;

    uint64_t
    total() const
    {
        uint64_t sum = 0;
        for (uint64_t v : values)
            sum += v;
        return sum;
    }
};

} // namespace copra::sim
