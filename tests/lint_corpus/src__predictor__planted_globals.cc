/**
 * Corpus: unsanctioned mutable state at file scope and as a static
 * local; both must fire mutable-global.
 */

namespace copra::predictor {

int g_call_count = 0;                        // expect: mutable-global

int
nextId()
{
    static int counter = 0;                  // expect: mutable-global
    return ++counter;
}

} // namespace copra::predictor
