#pragma once

#include <cstdint>

/**
 * Corpus: every state rule in suppressed form. A scratch member kept
 * out of the lists, a list entry for a member that migrated away, and
 * a deliberate config write in update() — each justified with an
 * allow() on its line.
 */

namespace copra::predictor {

class SuppressedState : public Predictor
{
  public:
    bool predict(const trace::BranchRecord &br) override;

    void
    update(const trace::BranchRecord &br, bool taken)
    {
        width_ += 1; // copra-lint: allow(state-mutation) -- corpus: adaptive geometry experiment
    }

    void reset() override;

    uint64_t stateBits() const override;
    void snapshotState(state::Writer &w) const override;
    void restoreState(state::Reader &r) override;

    COPRA_CONFIG_FIELDS(width_);
    COPRA_STATE_FIELDS(table_, ghost_); // copra-lint: allow(state-decl) -- corpus: member mid-migration

  private:
    int width_ = 0;
    int table_ = 0;
    int scratch_ = 0; // copra-lint: allow(state-coverage) -- corpus: debug-only scratch slot
};

} // namespace copra::predictor
