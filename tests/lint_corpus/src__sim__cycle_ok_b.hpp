#pragma once

/**
 * Corpus: the other half of the sanctioned cycle; see
 * src__sim__cycle_ok_a.hpp.
 */

// copra-lint: allow(include-cycle) -- planted sanctioned cycle
#include "sim/cycle_ok_a.hpp"

namespace copra::sim {

struct CycleOkB
{
    int b = 0;
};

} // namespace copra::sim
