/**
 * Corpus: an intrinsic-type mention justified with allow(). The escape
 * hatch exists for talking *about* the vector ABI (an alias, a sizeof
 * probe) without moving vector code out of the kernel TUs; the
 * directive must silence the rule, so this file contributes zero
 * findings.
 */

namespace copra::sim {

// copra-lint: allow(banned-api) -- corpus: ABI alias only, no vector math
using ProbeVec = __m256i;

unsigned
vectorWidthBytes()
{
    return sizeof(ProbeVec);
}

} // namespace copra::sim
