/**
 * Corpus: mutable file-scope state carrying a sanctioned-global
 * annotation; the finding must be suppressed. The constants below
 * double as clean cases: const/constexpr state is always legal.
 */

namespace copra::predictor {

// copra-lint: sanctioned-global(corpus: interned-name cache)
int g_name_cache_hits = 0;

constexpr int kTableBits = 12;
const int kHistoryDepth = 8;

} // namespace copra::predictor
