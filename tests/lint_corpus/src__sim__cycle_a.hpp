#pragma once

/**
 * Corpus: one half of a planted two-file include cycle. Each edge
 * inside the cycle is reported on its own include line in its own
 * file, so both halves carry an expectation.
 */

#include "sim/cycle_b.hpp"     // expect: include-cycle

namespace copra::sim {

struct CycleA
{
    int a = 0;
};

} // namespace copra::sim
