#pragma once

#include <cstdint>

/**
 * Corpus: two state-decl shapes. PlantedStale's field list names a
 * member the class does not have (fires at the macro); PlantedHalf
 * declares the list but only a third of the method trio (fires at the
 * class).
 */

namespace copra::predictor {

class PlantedStale : public Predictor
{
  public:
    bool predict(const trace::BranchRecord &br) override;
    void update(const trace::BranchRecord &br, bool taken) override;
    void reset() override;

    uint64_t stateBits() const override;
    void snapshotState(state::Writer &w) const override;
    void restoreState(state::Reader &r) override;

    COPRA_STATE_FIELDS(table_, ghost_);          // expect: state-decl

  private:
    int table_ = 0;
};

class PlantedHalf : public Predictor             // expect: state-decl
{
  public:
    bool predict(const trace::BranchRecord &br) override;
    void update(const trace::BranchRecord &br, bool taken) override;
    void reset() override;

    uint64_t stateBits() const override;

    COPRA_STATE_FIELDS(table_);

  private:
    int table_ = 0;
};

} // namespace copra::predictor
