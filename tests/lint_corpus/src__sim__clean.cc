/**
 * Corpus: a well-behaved translation unit. Zero findings expected;
 * any finding here is a false positive and fails the self-test.
 */

#include <cstdint>

namespace copra::sim {

uint64_t
fib(uint64_t n)
{
    uint64_t a = 0;
    uint64_t b = 1;
    while (n-- != 0) {
        uint64_t next = a + b;
        a = b;
        b = next;
    }
    return a;
}

} // namespace copra::sim
