#pragma once

/**
 * Corpus: a direct layering back-edge — trace may depend on util only,
 * so an include that lexically names a higher module must fire the
 * per-file half of the layering rule on the include line.
 */

#include "sim/driver.hpp"      // expect: layering
#include "util/counter.hpp"

namespace copra::trace {

struct PlantedLayering
{
    int depth = 0;
};

} // namespace copra::trace
