#pragma once

/**
 * Corpus: a second planted cycle, this one fully sanctioned — every
 * participating edge carries an allow(include-cycle), so no finding
 * may surface. Exercises suppression of the graph-level rule.
 */

// copra-lint: allow(include-cycle) -- planted sanctioned cycle
#include "sim/cycle_ok_b.hpp"

namespace copra::sim {

struct CycleOkA
{
    int a = 0;
};

} // namespace copra::sim
