/**
 * Corpus: every hot-path call-graph rule in suppressed form. Same
 * region shape as planted_hot.cc (COPRA_HOT base virtual, out-of-line
 * body, reachable helper), but each violation carries an allow()
 * marker with a reason, so a clean run reports nothing.
 */

namespace copra::predictor {

class SuppressedHotBase
{
  public:
    COPRA_HOT virtual void tick(uint64_t pc) noexcept;
    virtual ~SuppressedHotBase() = default;

  protected:
    void drain();

    std::vector<uint64_t> samples_;
    Mutex mu_;
};

void
SuppressedHotBase::tick(uint64_t pc) noexcept
{
    samples_.push_back(pc); // copra-lint: allow(hot-alloc) -- corpus: warm-up fill only
    MutexLock guard(mu_); // copra-lint: allow(hot-lock) -- corpus: cold slow path
    tickHook(pc); // copra-lint: allow(hot-unresolved) -- corpus: plugin seam
    warn("suppressed tick"); // copra-lint: allow(hot-io) -- corpus: rate-limited diagnostics
    drain();
}

void // copra-lint: allow(hot-throw) -- corpus: termination-only helper
SuppressedHotBase::drain()
{
    samples_.clear();
}

} // namespace copra::predictor
