/**
 * Corpus: the analysis layer reaching up into the verification layer —
 * core may depend on everything below it (util, obs, trace, workload,
 * predictor, sim) but never on check, whose reference models exist to
 * judge core's outputs. The include must fire the layering rule.
 */

#include "check/differential.hpp"  // expect: layering
#include "core/h2p.hpp"

namespace copra::core {

struct PlantedCoreLayering
{
    H2pCriteria criteria;
};

} // namespace copra::core
