/**
 * Corpus: planted banned-api violations. Lints as src/sim/..., so the
 * result-producing scope rules apply. Every marked line must fire.
 */

#include <chrono>
#include <cstdlib>
#include <ctime>

namespace copra::sim {

int
entropyLeak()
{
    int r = rand();                                // expect: banned-api
    long t = time(nullptr);                        // expect: banned-api
    auto now = std::chrono::steady_clock::now();   // expect: banned-api
    (void)now;
    return r + static_cast<int>(t);
}

const char *
envLeak()
{
    return std::getenv("COPRA_SECRET");            // expect: banned-api
}

} // namespace copra::sim
