#pragma once

/**
 * Corpus: the sanctioned middle of the include-through chain. The
 * sim -> core edge below is a back-edge, but the allow() suppresses
 * the per-file finding here — which is exactly what lets the graph
 * pass prove its point: files that include THIS header still get an
 * include-through finding, because suppression is local to the edge,
 * not inherited by includers.
 */

// copra-lint: allow(layering) -- planted sanctioned back-edge
#include "core/chain_leaf.hpp"

namespace copra::sim {

struct ChainMid
{
    core::ChainLeaf leaf;
};

} // namespace copra::sim
