#pragma once

/**
 * Corpus: an include-lite violation with a justification; the allow()
 * must hold and this header stays clean.
 */

namespace copra::sim {

// copra-lint: allow(include-lite) -- corpus: alias header on purpose
using ValueList = std::vector<int>;

} // namespace copra::sim
