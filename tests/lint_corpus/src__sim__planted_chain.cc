/**
 * Corpus: the victim of the include-through chain. The direct include
 * below is legal (sim -> sim), but its closure reaches core through
 * chain_mid's sanctioned back-edge, so the graph half of the layering
 * rule must fire here with the full chain in the message.
 */

#include "sim/chain_mid.hpp"   // expect: layering

namespace copra::sim {

int
chainDepth(const ChainMid &mid)
{
    return mid.leaf.experiments;
}

} // namespace copra::sim
