/**
 * Corpus: range-for over unordered containers, both through a local
 * declaration and through an accessor returning one.
 */

#include <string>
#include <unordered_map>

namespace copra::core {

std::unordered_map<std::string, int> &
table();

int
dumpCounts(const std::unordered_map<std::string, int> &counts)
{
    int sum = 0;
    for (const auto &kv : counts) {            // expect: unordered-iter
        sum += kv.second;
    }
    for (const auto &kv : table()) {           // expect: unordered-iter
        sum += kv.second;
    }
    return sum;
}

} // namespace copra::core
