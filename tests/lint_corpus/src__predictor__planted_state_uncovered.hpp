#pragma once

#include <cstdint>

/**
 * Corpus: a contracted predictor whose field lists miss one member and
 * double-list another; state-coverage must fire once per field, at the
 * field's declaration.
 */

namespace copra::predictor {

class PlantedUncovered : public Predictor
{
  public:
    bool predict(const trace::BranchRecord &br) override;
    void update(const trace::BranchRecord &br, bool taken) override;
    void reset() override;

    uint64_t stateBits() const override;
    void snapshotState(state::Writer &w) const override;
    void restoreState(state::Reader &r) override;

    COPRA_CONFIG_FIELDS(count_);
    COPRA_STATE_FIELDS(count_, table_);

  private:
    int count_ = 0;                              // expect: state-coverage
    int table_ = 0;
    int shadow_ = 0;                             // expect: state-coverage
};

} // namespace copra::predictor
