#pragma once

/**
 * Corpus: std names used without their headers; include-lite must
 * fire once per missing header, at the first use.
 */

namespace copra::sim {

struct PlantedInclude
{
    std::vector<int> values;                   // expect: include-lite
    uint64_t stamp = 0;                        // expect: include-lite
};

} // namespace copra::sim
