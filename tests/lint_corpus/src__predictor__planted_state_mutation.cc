/**
 * Corpus: the cross-TU half of planted_state_mutation.hpp — PlantedBare
 * has no state contract, so mutating a member in an out-of-line
 * prediction-path body fires state-mutation here, not in the header.
 */

namespace copra::predictor {

bool
PlantedBare::predict(const trace::BranchRecord &br)
{
    return hits_ > 0;
}

void
PlantedBare::update(const trace::BranchRecord &br, bool taken)
{
    ++hits_;                                     // expect: state-mutation
}

} // namespace copra::predictor
