// copra-lint: allow(header-guard) -- corpus: mimics a vendored header
#ifndef COPRA_CORPUS_SUPPRESSED_GUARD_HPP
#define COPRA_CORPUS_SUPPRESSED_GUARD_HPP

/**
 * Corpus: the same legacy guard, suppressed. The allow() on line 1
 * covers the missing-pragma finding (line 1) and the legacy-guard
 * finding (line 2).
 */

namespace copra::sim {

inline int
zero()
{
    return 0;
}

} // namespace copra::sim

#endif
