/**
 * @file
 * Unit tests for branch-instance tagging and the history window
 * (paper §3.2).
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/tagging.hpp"

namespace copra::core {
namespace {

using trace::BranchKind;
using trace::BranchRecord;

BranchRecord
cond(uint64_t pc, bool taken, uint64_t target = 0)
{
    return {pc, target ? target : pc + 64, BranchKind::Conditional, taken};
}

/** Find a tag's state in a collected window; nullptr if absent. */
const TagState *
find(const std::vector<TagState> &collected, const Tag &tag)
{
    for (const auto &ts : collected)
        if (ts.tag == tag)
            return &ts;
    return nullptr;
}

TEST(Tag, PackAndUnpack)
{
    Tag t(0x12345678, TagMethod::BackwardCount, 37);
    EXPECT_EQ(t.pc(), 0x12345678u);
    EXPECT_EQ(t.method(), TagMethod::BackwardCount);
    EXPECT_EQ(t.num(), 37u);

    Tag o(0x12345678, TagMethod::Occurrence, 37);
    EXPECT_NE(t, o);
    EXPECT_EQ(o.method(), TagMethod::Occurrence);
}

TEST(Tag, HashableAndDistinct)
{
    std::hash<Tag> h;
    EXPECT_EQ(h(Tag(0x100, TagMethod::Occurrence, 0)),
              h(Tag(0x100, TagMethod::Occurrence, 0)));
    EXPECT_NE(h(Tag(0x100, TagMethod::Occurrence, 0)),
              h(Tag(0x100, TagMethod::Occurrence, 1)));
}

TEST(HistoryWindow, OccurrenceNumberingCountsFromCurrent)
{
    // Execute A, B, A; the window should tag the newer A as A0 and the
    // older as A1 (paper §3.2 method one).
    HistoryWindow w(8);
    w.push(cond(0xA0, true));
    w.push(cond(0xB0, false));
    w.push(cond(0xA0, false));

    std::vector<TagState> collected;
    w.collect(collected);

    auto *a0 = find(collected, Tag(0xA0, TagMethod::Occurrence, 0));
    ASSERT_NE(a0, nullptr);
    EXPECT_FALSE(a0->taken); // most recent A was not taken

    auto *a1 = find(collected, Tag(0xA0, TagMethod::Occurrence, 1));
    ASSERT_NE(a1, nullptr);
    EXPECT_TRUE(a1->taken); // older A was taken

    auto *b0 = find(collected, Tag(0xB0, TagMethod::Occurrence, 0));
    ASSERT_NE(b0, nullptr);
    EXPECT_FALSE(b0->taken);
}

TEST(HistoryWindow, BackwardCountTagsIterations)
{
    // A loop: body branch B, then taken backward branch L, repeated.
    // After two full iterations, B from the previous iteration carries
    // backward-count 1 and the current iteration's B carries 0.
    HistoryWindow w(8);
    w.push(cond(0xB0, true));              // iter 1 body
    w.push(cond(0x200, true, 0x100));      // taken backward: iter boundary
    w.push(cond(0xB0, false));             // iter 2 body

    std::vector<TagState> collected;
    w.collect(collected);

    auto *b_now = find(collected, Tag(0xB0, TagMethod::BackwardCount, 0));
    ASSERT_NE(b_now, nullptr);
    EXPECT_FALSE(b_now->taken);

    auto *b_prev = find(collected, Tag(0xB0, TagMethod::BackwardCount, 1));
    ASSERT_NE(b_prev, nullptr);
    EXPECT_TRUE(b_prev->taken);
}

TEST(HistoryWindow, NotTakenBackwardBranchIsNotABoundary)
{
    HistoryWindow w(8);
    w.push(cond(0x200, false, 0x100)); // backward but not taken
    EXPECT_EQ(w.backwardEpoch(), 0u);
    w.push(cond(0x200, true, 0x100));
    EXPECT_EQ(w.backwardEpoch(), 1u);
}

TEST(HistoryWindow, BackwardJumpAdvancesEpoch)
{
    HistoryWindow w(8);
    w.push({0x200, 0x100, BranchKind::Jump, true});
    EXPECT_EQ(w.backwardEpoch(), 1u);
    // Forward jumps do not.
    w.push({0x100, 0x200, BranchKind::Jump, true});
    EXPECT_EQ(w.backwardEpoch(), 1u);
}

TEST(HistoryWindow, CallsAndReturnsAreTransparent)
{
    HistoryWindow w(4);
    w.push(cond(0x100, true));
    w.push({0x104, 0x50, BranchKind::Call, true});   // backward-looking
    w.push({0x54, 0x108, BranchKind::Return, true});
    EXPECT_EQ(w.backwardEpoch(), 0u);
    EXPECT_EQ(w.size(), 1u);
}

TEST(HistoryWindow, DepthEvictsOldest)
{
    HistoryWindow w(2);
    w.push(cond(0x100, true));
    w.push(cond(0x104, true));
    w.push(cond(0x108, true));
    EXPECT_EQ(w.size(), 2u);

    std::vector<TagState> collected;
    w.collect(collected);
    EXPECT_EQ(find(collected, Tag(0x100, TagMethod::Occurrence, 0)),
              nullptr);
    EXPECT_NE(find(collected, Tag(0x108, TagMethod::Occurrence, 0)),
              nullptr);
}

TEST(HistoryWindow, MethodBDeduplicationKeepsMostRecent)
{
    // Two executions of the same branch inside one iteration produce the
    // same method-B tag; the newer outcome must win.
    HistoryWindow w(8);
    w.push(cond(0xB0, true));
    w.push(cond(0xB0, false)); // same branch, same epoch
    std::vector<TagState> collected;
    w.collect(collected);

    auto *b = find(collected, Tag(0xB0, TagMethod::BackwardCount, 0));
    ASSERT_NE(b, nullptr);
    EXPECT_FALSE(b->taken); // the most recent execution

    // Method A still distinguishes the two.
    EXPECT_NE(find(collected, Tag(0xB0, TagMethod::Occurrence, 0)),
              nullptr);
    EXPECT_NE(find(collected, Tag(0xB0, TagMethod::Occurrence, 1)),
              nullptr);
}

TEST(HistoryWindow, BothMethodsReportedPerEntry)
{
    HistoryWindow w(4);
    w.push(cond(0x100, true));
    std::vector<TagState> collected;
    w.collect(collected);
    EXPECT_EQ(collected.size(), 2u); // one entry, two tagging methods
}

TEST(HistoryWindow, CollectOrdersNewestFirst)
{
    HistoryWindow w(4);
    w.push(cond(0x100, true));
    w.push(cond(0x104, false));
    std::vector<TagState> collected;
    w.collect(collected);
    ASSERT_GE(collected.size(), 2u);
    EXPECT_EQ(collected[0].tag.pc(), 0x104u);
}

TEST(HistoryWindow, ClearForgets)
{
    HistoryWindow w(4);
    w.push(cond(0x100, true));
    w.push({0x200, 0x100, BranchKind::Jump, true});
    w.clear();
    EXPECT_EQ(w.size(), 0u);
    EXPECT_EQ(w.backwardEpoch(), 0u);
    std::vector<TagState> collected;
    w.collect(collected);
    EXPECT_TRUE(collected.empty());
}

TEST(HistoryWindow, EpochOverflowPastWindowClampsTag)
{
    // A branch executed 300 iterations ago exceeds the 8-bit instance
    // number; it must simply not be reported by method B.
    HistoryWindow w(4);
    w.push(cond(0xB0, true));
    for (int i = 0; i < 300; ++i)
        w.push({0x200, 0x100, BranchKind::Jump, true});
    std::vector<TagState> collected;
    w.collect(collected);
    for (const auto &ts : collected)
        if (ts.tag.method() == TagMethod::BackwardCount)
            EXPECT_NE(ts.tag.pc(), 0xB0u);
    // Method A is unaffected by the elapsed iterations.
    EXPECT_NE(find(collected, Tag(0xB0, TagMethod::Occurrence, 0)),
              nullptr);
}

class WindowDepths : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(WindowDepths, SizeNeverExceedsDepth)
{
    unsigned depth = GetParam();
    HistoryWindow w(depth);
    std::vector<TagState> collected;
    for (unsigned i = 0; i < 3 * depth; ++i) {
        w.push(cond(0x100 + 4 * (i % 7), i % 2 == 0));
        w.collect(collected);
        EXPECT_LE(w.size(), depth);
        // Both-method enumeration can at most double the entries.
        EXPECT_LE(collected.size(), 2u * depth);
    }
}

INSTANTIATE_TEST_SUITE_P(PaperDepths, WindowDepths,
                         ::testing::Values(1u, 8u, 12u, 16u, 20u, 24u,
                                           28u, 32u));

} // namespace
} // namespace copra::core
