/**
 * @file
 * Unit tests for the reference models themselves: cold-start defaults,
 * table semantics on tiny hand-written traces, and spot agreement with
 * the optimized implementations on short streams (full-scale agreement
 * is the differential suite's job; here we pin the *reference* side so
 * a bug cannot hide in both implementations at once).
 */

#include <gtest/gtest.h>

#include "check/ref_models.hpp"
#include "predictor/bimodal.hpp"
#include "util/rng.hpp"
#include "predictor/loop_predictor.hpp"
#include "predictor/two_level.hpp"

namespace copra::check {
namespace {

using predictor::TwoLevelConfig;
using trace::BranchKind;
using trace::BranchRecord;

BranchRecord
cond(uint64_t pc, bool taken)
{
    return {pc, pc + 8, BranchKind::Conditional, taken};
}

TEST(RefTwoLevel, ColdStartPredictsNotTaken)
{
    // Counters initialize weakly-not-taken for every width.
    for (unsigned cbits : {1u, 2u, 3u}) {
        TwoLevelConfig config = TwoLevelConfig::gshare(8);
        config.counterBits = cbits;
        RefTwoLevel ref(config);
        EXPECT_FALSE(ref.predict(cond(0x100, true)))
            << "cbits=" << cbits;
    }
}

TEST(RefTwoLevel, LearnsAlternationThroughHistory)
{
    // With history indexing, a strictly alternating branch becomes
    // perfectly predictable once the counters for both history patterns
    // are trained; a plain counter never gets there.
    RefTwoLevel ref(TwoLevelConfig::gshare(4));
    bool taken = true;
    int correct_tail = 0;
    for (int i = 0; i < 200; ++i) {
        bool p = ref.predict(cond(0x40, taken));
        ref.update(cond(0x40, taken), taken);
        if (i >= 150 && p == taken)
            ++correct_tail;
        taken = !taken;
    }
    EXPECT_EQ(correct_tail, 50) << "alternation must become perfect";
}

TEST(RefTwoLevel, PerAddressScopeKeepsHistoriesSeparate)
{
    // Two branches in different BHT rows must not share history: train
    // pc A heavily, then check pc B still sees a cold table.
    TwoLevelConfig config = TwoLevelConfig::pas(6, 4, 2);
    RefTwoLevel ref(config);
    for (int i = 0; i < 64; ++i)
        ref.update(cond(0x100, true), true);
    // 0x100 >> 2 = 0x40 -> row 0; 0x104 >> 2 = 0x41 -> row 1.
    // Row 1's history is still zero; its pattern counter is untouched
    // only if the PHT index differs, which the pc select bits ensure.
    EXPECT_FALSE(ref.predict(cond(0x104, true)));
}

TEST(RefTwoLevel, AgreesWithOptimizedOnShortStream)
{
    for (const TwoLevelConfig &config :
         {TwoLevelConfig::gshare(5), TwoLevelConfig::gag(4),
          TwoLevelConfig::gas(4, 2), TwoLevelConfig::pas(4, 3, 2),
          TwoLevelConfig::pag(4, 3)}) {
        predictor::TwoLevel opt(config);
        RefTwoLevel ref(config);
        uint64_t state = 0x1234 ^ config.phtBits;
        for (int i = 0; i < 500; ++i) {
            uint64_t pc = (splitmix64(state) % 32) * 4;
            bool taken = splitmix64(state) & 1;
            BranchRecord br = cond(pc, taken);
            EXPECT_EQ(ref.predict(br), opt.predict(br))
                << config.label << " diverged at branch " << i;
            ref.update(br, taken);
            opt.update(br, taken);
        }
    }
}

TEST(RefBimodal, MatchesTwoBitCounterSemantics)
{
    RefBimodal ref(4);
    BranchRecord br = cond(0x20, true);
    EXPECT_FALSE(ref.predict(br)); // init weakly-not-taken
    ref.update(br, true);
    EXPECT_TRUE(ref.predict(br)); // 1 -> 2 crosses the threshold
    ref.update(br, false);
    EXPECT_FALSE(ref.predict(br)); // back to 1
    // Saturation at 3: two not-takens needed to flip after 2 takens.
    ref.update(br, true);
    ref.update(br, true);
    ref.update(br, false);
    EXPECT_TRUE(ref.predict(br));
}

TEST(RefBimodal, AliasesExactlyLikeOptimized)
{
    predictor::Bimodal opt(3);
    RefBimodal ref(3);
    // 16 pcs over an 8-entry table: every counter is shared by two pcs.
    uint64_t state = 99;
    for (int i = 0; i < 400; ++i) {
        uint64_t pc = (splitmix64(state) % 16) * 4;
        bool taken = splitmix64(state) & 1;
        BranchRecord br = cond(pc, taken);
        ASSERT_EQ(ref.predict(br), opt.predict(br)) << "branch " << i;
        ref.update(br, taken);
        opt.update(br, taken);
    }
}

TEST(RefLoop, PerfectOnFixedTripLoopAfterOneTrip)
{
    RefLoop ref;
    const int trip = 7;
    int mispredicts_after_warmup = 0;
    for (int iter = 0; iter < 20; ++iter) {
        for (int i = 0; i < trip + 1; ++i) {
            bool taken = i < trip; // for-type: taken trip times, then exit
            BranchRecord br = cond(0x500, taken);
            bool p = ref.predict(br);
            ref.update(br, taken);
            if (iter >= 2 && p != taken)
                ++mispredicts_after_warmup;
        }
    }
    EXPECT_EQ(mispredicts_after_warmup, 0);
}

TEST(RefLoop, MatchesOptimizedOnWhileTypeBranch)
{
    predictor::LoopPredictor opt;
    RefLoop ref;
    // while-type: not-taken n times, then taken once; n drifts.
    for (int n : {3, 3, 4, 4, 4, 2, 5}) {
        for (int i = 0; i <= n; ++i) {
            bool taken = i == n;
            BranchRecord br = cond(0x700, taken);
            ASSERT_EQ(ref.predict(br), opt.predict(br))
                << "n=" << n << " i=" << i;
            ref.update(br, taken);
            opt.update(br, taken);
        }
    }
}

TEST(RefFixedPattern, ReplaysOutcomeFromKAgo)
{
    RefFixedPattern ref(3);
    const bool pattern[] = {true, false, false};
    BranchRecord br = cond(0x900, true);
    // Cold default: taken until 3 outcomes recorded.
    for (int i = 0; i < 3; ++i) {
        EXPECT_TRUE(ref.predict(br));
        ref.update(br, pattern[i % 3]);
    }
    // Warm: perfect on the period-3 pattern.
    for (int i = 3; i < 60; ++i) {
        EXPECT_EQ(ref.predict(br), pattern[i % 3]) << "i=" << i;
        ref.update(br, pattern[i % 3]);
    }
}

TEST(RefHybrid, ChooserMovesTowardTheCorrectComponent)
{
    // Component A: always-taken-ish (gshare trained taken); component
    // B: cold (predicts not-taken). On an always-taken branch the
    // chooser must converge to A and the hybrid must predict taken.
    auto make = [] {
        return RefHybrid(
            std::make_unique<RefTwoLevel>(TwoLevelConfig::gshare(4)),
            std::make_unique<RefTwoLevel>(TwoLevelConfig::pas(4, 3, 2)),
            4);
    };
    RefHybrid hybrid = make();
    BranchRecord br = cond(0xa00, true);
    for (int i = 0; i < 50; ++i) {
        hybrid.predict(br);
        hybrid.update(br, true);
    }
    EXPECT_TRUE(hybrid.predict(br));
}

TEST(RefModels, ResetRestoresColdState)
{
    RefTwoLevel two(TwoLevelConfig::gshare(6));
    RefBimodal bim(4);
    RefLoop loop;
    RefFixedPattern fixed(2);
    BranchRecord br = cond(0x40, true);
    const std::vector<predictor::Predictor *> all = {&two, &bim, &loop,
                                                     &fixed};
    for (int i = 0; i < 30; ++i) {
        for (predictor::Predictor *p : all) {
            p->predict(br);
            p->update(br, true);
        }
    }
    two.reset();
    bim.reset();
    loop.reset();
    fixed.reset();
    EXPECT_FALSE(two.predict(br));
    EXPECT_FALSE(bim.predict(br));
    EXPECT_TRUE(loop.predict(br));  // cold loop default: taken
    EXPECT_TRUE(fixed.predict(br)); // cold fixed default: taken
}

} // namespace
} // namespace copra::check
