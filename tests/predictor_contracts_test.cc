/**
 * @file
 * Runtime companion to the compile-time predictor contracts: the
 * static_asserts in predictor/contracts.hpp prove the roster's shape;
 * these tests prove the behavioural half on live instances — every
 * factory spec constructs, names itself, resets, and keeps the batch
 * entry point equivalent to the scalar predict/update loop.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "check/fuzz.hpp"
#include "predictor/contracts.hpp"
#include "predictor/factory.hpp"

namespace {

using copra::predictor::makePredictor;
using copra::predictor::knownPredictors;

TEST(PredictorContracts, RosterIsStaticallyValidated)
{
    // Compile-time fact re-stated at runtime so a test run documents
    // that the contract layer was actually built in.
    static_assert(copra::predictor::contracts::kRosterValidated);
    SUCCEED();
}

TEST(PredictorContracts, EveryFactorySpecConstructsAndNames)
{
    for (const std::string &spec : knownPredictors()) {
        auto pred = makePredictor(spec);
        ASSERT_NE(pred, nullptr) << spec;
        EXPECT_FALSE(pred->name().empty()) << spec;
        pred->reset(); // must be callable on a fresh instance
    }
}

TEST(PredictorContracts, BatchEntryPointMatchesScalarLoop)
{
    copra::trace::Trace trace = copra::check::fuzzTrace(7, 4000);
    std::vector<copra::trace::BranchRecord> conds;
    for (const auto &rec : trace.records())
        if (rec.isConditional())
            conds.push_back(rec);
    ASSERT_FALSE(conds.empty());

    for (const std::string &spec : knownPredictors()) {
        auto batched = makePredictor(spec);
        auto scalar = makePredictor(spec);
        uint64_t batch_correct = batched->predictUpdateBatch(
            std::span<const copra::trace::BranchRecord>(conds), nullptr);
        uint64_t scalar_correct = 0;
        for (const auto &rec : conds) {
            scalar_correct +=
                scalar->predict(rec) == rec.taken ? 1 : 0;
            scalar->update(rec, rec.taken);
        }
        EXPECT_EQ(batch_correct, scalar_correct) << spec;
    }
}

} // namespace
