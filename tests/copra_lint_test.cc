/**
 * @file
 * Unit tests for the copra_lint rule engine: each rule driven on
 * in-memory sources through its firing, suppressed, and clean cases,
 * plus the end-to-end self-test over the planted corpus and a
 * clean-tree run against the real repository (rooted at the configured
 * COPRA_LINT_REPO_ROOT).
 *
 * Lint directives appear below only inside string literals; the
 * linter's lexer skips strings, so this file cannot trip the very
 * rules it exercises when the tree gate walks tests/.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "copra_lint/lint.hpp"

namespace {

using copra::lint::Annotation;
using copra::lint::FileScan;
using copra::lint::Finding;
using copra::lint::scanSource;
using copra::lint::runRules;

std::vector<Finding>
run(const std::string &rel, const std::string &src)
{
    return runRules(scanSource(rel, src), {});
}

int
countRule(const std::vector<Finding> &findings, const std::string &rule)
{
    int n = 0;
    for (const Finding &f : findings)
        if (f.rule == rule)
            ++n;
    return n;
}

TEST(Lexer, StripsCommentsStringsAndPreprocessor)
{
    FileScan scan = scanSource("src/sim/x.cc",
        "#include <vector>\n"
        "// a comment with rand() inside\n"
        "/* block with time(0) */\n"
        "const char *s = \"rand()\";\n"
        "int n = 0;\n");
    for (const auto &tok : scan.tokens) {
        EXPECT_NE(tok.text, "rand");
        EXPECT_NE(tok.text, "time");
    }
    EXPECT_EQ(scan.includes.count("vector"), 1u);
    ASSERT_GE(scan.tokens.size(), 5u);
    EXPECT_EQ(scan.tokens.back().text, ";");
}

TEST(Lexer, ParsesAllowAndSanctionedDirectives)
{
    FileScan scan = scanSource("src/sim/x.cc",
        "// copra-lint: allow(banned-api) -- phase timing only\n"
        "// copra-lint: sanctioned-global(lazy singleton)\n");
    ASSERT_EQ(scan.annotations.size(), 2u);
    EXPECT_EQ(scan.annotations[0].kind, Annotation::Kind::Allow);
    EXPECT_EQ(scan.annotations[0].rule, "banned-api");
    EXPECT_EQ(scan.annotations[0].reason, "phase timing only");
    EXPECT_EQ(scan.annotations[1].kind,
              Annotation::Kind::SanctionedGlobal);
    EXPECT_EQ(scan.annotations[1].reason, "lazy singleton");
}

TEST(Lexer, ParsesDirectiveTrailingAPreprocessorLine)
{
    FileScan scan = scanSource("src/sim/x.hpp",
        "#ifndef X_HPP // copra-lint: allow(header-guard) -- vendored\n"
        "#define X_HPP\n"
        "#endif\n");
    EXPECT_EQ(scan.guardLine, 1);
    ASSERT_EQ(scan.annotations.size(), 1u);
    EXPECT_EQ(scan.annotations[0].kind, Annotation::Kind::Allow);
    EXPECT_EQ(scan.annotations[0].line, 1);
}

TEST(BannedApi, FiresInResultScopeOnly)
{
    const std::string src =
        "int f() { return rand(); }\n"
        "long g() { return time(nullptr); }\n";
    EXPECT_EQ(countRule(run("src/sim/x.cc", src), "banned-api"), 2);
    EXPECT_EQ(countRule(run("src/predictor/x.cc", src), "banned-api"), 2);
    EXPECT_EQ(countRule(run("src/core/x.cc", src), "banned-api"), 2);
    EXPECT_EQ(countRule(run("tools/x.cc", src), "banned-api"), 0);
    EXPECT_EQ(countRule(run("tests/x.cc", src), "banned-api"), 0);
}

TEST(BannedApi, FlagsClockTypesAndGetenv)
{
    EXPECT_EQ(countRule(run("src/sim/x.cc",
        "auto t = std::chrono::steady_clock::now();\n"), "banned-api"),
        1);
    // getenv is banned across src/ except the util doorway itself.
    const std::string env = "const char *e = std::getenv(\"X\");\n";
    EXPECT_EQ(countRule(run("src/trace/x.cc", env), "banned-api"), 1);
    EXPECT_EQ(countRule(run("src/util/env.hpp", env), "banned-api"), 0);
}

TEST(BannedApi, MemberFunctionsNamedLikeBannedCallsAreLegal)
{
    EXPECT_EQ(countRule(run("src/sim/x.cc",
        "int f(Timer &w) { return w.time(); }\n"), "banned-api"), 0);
    EXPECT_EQ(countRule(run("src/sim/x.cc",
        "int f(Timer *w) { return w->clock(); }\n"), "banned-api"), 0);
}

TEST(BannedApi, AllowWithReasonSuppresses)
{
    EXPECT_EQ(countRule(run("src/sim/x.cc",
        "// copra-lint: allow(banned-api) -- timing only\n"
        "auto t = std::chrono::steady_clock::now();\n"), "banned-api"),
        0);
}

TEST(UnorderedIter, FiresOnVariableAndAccessor)
{
    const std::string src =
        "#include <unordered_map>\n"
        "std::unordered_map<int, int> &table();\n"
        "int f(const std::unordered_map<int, int> &m) {\n"
        "    int s = 0;\n"
        "    for (const auto &kv : m) s += kv.second;\n"
        "    for (const auto &kv : table()) s += kv.second;\n"
        "    return s;\n"
        "}\n";
    EXPECT_EQ(countRule(run("src/core/x.cc", src), "unordered-iter"), 2);
    // Outside src/ and bench/ the rule stays quiet.
    EXPECT_EQ(countRule(run("tools/x.cc", src), "unordered-iter"), 0);
}

TEST(UnorderedIter, OrderedContainersAreLegal)
{
    EXPECT_EQ(countRule(run("src/core/x.cc",
        "#include <vector>\n"
        "int f(const std::vector<int> &v) {\n"
        "    int s = 0;\n"
        "    for (int x : v) s += x;\n"
        "    return s;\n"
        "}\n"), "unordered-iter"), 0);
}

TEST(UnorderedIter, CrossFileAccessorKnowledgeViaExtraDecls)
{
    copra::lint::UnorderedDecls extra;
    extra.accessors.insert("branches");
    FileScan scan = scanSource("src/core/x.cc",
        "int f(const Ledger &l) {\n"
        "    int s = 0;\n"
        "    for (const auto &b : l.branches()) s += b.second;\n"
        "    return s;\n"
        "}\n");
    EXPECT_EQ(countRule(runRules(scan, extra), "unordered-iter"), 1);
    EXPECT_EQ(countRule(runRules(scan, {}), "unordered-iter"), 0);
}

TEST(MutableGlobal, FiresAtFileScopeAndStaticLocal)
{
    auto found = run("src/sim/x.cc",
        "namespace copra {\n"
        "int g_count = 0;\n"
        "int f() { static int hits = 0; return ++hits; }\n"
        "}\n");
    EXPECT_EQ(countRule(found, "mutable-global"), 2);
}

TEST(MutableGlobal, ConstAndFunctionLocalsAreLegal)
{
    EXPECT_EQ(countRule(run("src/sim/x.cc",
        "namespace copra {\n"
        "const int kA = 1;\n"
        "constexpr int kB = 2;\n"
        "int f() { int local = 0; return local; }\n"
        "struct S { int member = 0; };\n"
        "}\n"), "mutable-global"), 0);
}

TEST(MutableGlobal, SanctionedGlobalSuppresses)
{
    EXPECT_EQ(countRule(run("src/sim/x.cc",
        "// copra-lint: sanctioned-global(cache on/off switch)\n"
        "bool g_enabled = false;\n"), "mutable-global"), 0);
}

TEST(HeaderGuard, LegacyGuardAndMissingPragmaFire)
{
    auto found = run("src/sim/x.hpp",
        "#ifndef X_HPP\n"
        "#define X_HPP\n"
        "#endif\n");
    EXPECT_EQ(countRule(found, "header-guard"), 2);
    EXPECT_EQ(countRule(run("src/sim/x.hpp", "#pragma once\n"),
                        "header-guard"), 0);
    // Non-headers are out of scope for guard hygiene.
    EXPECT_EQ(countRule(run("src/sim/x.cc", "#ifndef A\n#endif\n"),
                        "header-guard"), 0);
}

TEST(IncludeLite, FiresOncePerMissingHeader)
{
    auto found = run("src/sim/x.hpp",
        "#pragma once\n"
        "struct S {\n"
        "    std::vector<int> a;\n"
        "    std::vector<int> b;\n"
        "    uint64_t c = 0;\n"
        "};\n");
    EXPECT_EQ(countRule(found, "include-lite"), 2);
    EXPECT_EQ(countRule(run("src/sim/x.hpp",
        "#pragma once\n"
        "#include <cstdint>\n"
        "#include <vector>\n"
        "struct S { std::vector<uint64_t> a; };\n"), "include-lite"), 0);
    // Source files may lean on their headers; the rule is headers-only.
    EXPECT_EQ(countRule(run("src/sim/x.cc",
        "std::vector<int> v;\n"), "include-lite"), 0);
}

TEST(Annotation, MalformedDirectivesAreFindings)
{
    EXPECT_EQ(countRule(run("src/sim/x.cc",
        "// copra-lint: allow(banned-api)\n"), "annotation"), 1);
    EXPECT_EQ(countRule(run("src/sim/x.cc",
        "// copra-lint: allow(no-such-rule) -- reason\n"), "annotation"),
        1);
    EXPECT_EQ(countRule(run("src/sim/x.cc",
        "// copra-lint: frobnicate\n"), "annotation"), 1);
}

TEST(Annotation, FindingsCannotBeSuppressed)
{
    // An allow(annotation) is itself unknown-rule-free but must not
    // silence the malformed directive right below it.
    auto found = run("src/sim/x.cc",
        "// copra-lint: allow(annotation) -- trying to hide\n"
        "// copra-lint: frobnicate\n");
    EXPECT_EQ(countRule(found, "annotation"), 1);
}

TEST(Suppression, CoversOwnLineAndNextOnly)
{
    auto found = run("src/sim/x.cc",
        "// copra-lint: allow(banned-api) -- timing only\n"
        "int a = rand();\n"
        "int b = rand();\n");
    ASSERT_EQ(countRule(found, "banned-api"), 1);
    EXPECT_EQ(found[0].line, 3);
}

TEST(Suppression, RuleMismatchDoesNotSuppress)
{
    EXPECT_EQ(countRule(run("src/sim/x.cc",
        "// copra-lint: allow(unordered-iter) -- wrong rule\n"
        "int a = rand();\n"), "banned-api"), 1);
}

TEST(Layering, ModuleResolution)
{
    EXPECT_EQ(copra::lint::moduleOf("src/sim/driver.hpp"), "sim");
    EXPECT_EQ(copra::lint::moduleOf("src/util/rng.cc"), "util");
    EXPECT_EQ(copra::lint::moduleOf("tools/copra_lint/lint.hpp"),
              "tools");
    EXPECT_EQ(copra::lint::moduleOf("bench/bench_common.hpp"), "bench");
    EXPECT_EQ(copra::lint::moduleOf("src/main.cc"), "");
    EXPECT_EQ(copra::lint::includeModule("sim/driver.hpp"), "sim");
    EXPECT_EQ(copra::lint::includeModule("copra_lint/lint.hpp"),
              "tools");
    EXPECT_EQ(copra::lint::includeModule("vector"), "");
}

TEST(Layering, DagAllowsDownwardOnly)
{
    using copra::lint::moduleAllowed;
    EXPECT_TRUE(moduleAllowed("sim", "predictor"));
    EXPECT_TRUE(moduleAllowed("core", "sim"));
    EXPECT_TRUE(moduleAllowed("check", "core"));
    EXPECT_TRUE(moduleAllowed("sim", "sim"));
    EXPECT_TRUE(moduleAllowed("tests", "core"));
    EXPECT_FALSE(moduleAllowed("sim", "core"));
    EXPECT_FALSE(moduleAllowed("trace", "sim"));
    EXPECT_FALSE(moduleAllowed("workload", "predictor"));
    EXPECT_FALSE(moduleAllowed("predictor", "workload"));
    // Sinks are below every src module.
    EXPECT_FALSE(moduleAllowed("sim", "bench"));
    // Unknown modules are never constrained.
    EXPECT_TRUE(moduleAllowed("", "core"));
    EXPECT_TRUE(moduleAllowed("sim", ""));
}

TEST(Layering, DirectBackEdgeFiresPerFile)
{
    EXPECT_EQ(countRule(run("src/trace/x.hpp",
        "#pragma once\n"
        "#include \"sim/driver.hpp\"\n"), "layering"), 1);
    // Downward and sibling-to-lower edges stay legal.
    EXPECT_EQ(countRule(run("src/core/x.cc",
        "#include \"sim/driver.hpp\"\n"), "layering"), 0);
    // Sinks may include anything.
    EXPECT_EQ(countRule(run("tests/x.cc",
        "#include \"core/experiments.hpp\"\n"), "layering"), 0);
}

TEST(Layering, AllowWithReasonSuppresses)
{
    EXPECT_EQ(countRule(run("src/trace/x.hpp",
        "#pragma once\n"
        "// copra-lint: allow(layering) -- transitional, tracked\n"
        "#include \"sim/driver.hpp\"\n"), "layering"), 0);
}

TEST(Graph, TwoFileCycleReportsBothEdges)
{
    std::vector<FileScan> scans;
    scans.push_back(scanSource("src/sim/a.hpp",
        "#pragma once\n#include \"sim/b.hpp\"\n"));
    scans.push_back(scanSource("src/sim/b.hpp",
        "#pragma once\n#include \"sim/a.hpp\"\n"));
    auto graph = copra::lint::buildIncludeGraph(scans);
    auto findings = copra::lint::runGraphRules(scans, graph);
    EXPECT_EQ(countRule(findings, "include-cycle"), 2);
}

TEST(Graph, AcyclicChainIsCycleClean)
{
    std::vector<FileScan> scans;
    scans.push_back(scanSource("src/util/a.hpp", "#pragma once\n"));
    scans.push_back(scanSource("src/trace/b.hpp",
        "#pragma once\n#include \"util/a.hpp\"\n"));
    scans.push_back(scanSource("src/sim/c.hpp",
        "#pragma once\n#include \"trace/b.hpp\"\n"));
    auto graph = copra::lint::buildIncludeGraph(scans);
    auto findings = copra::lint::runGraphRules(scans, graph);
    EXPECT_EQ(countRule(findings, "include-cycle"), 0);
    EXPECT_EQ(countRule(findings, "layering"), 0);
}

TEST(Graph, IncludeThroughReportsTheChain)
{
    // top (sim) -> mid (sim, legal) -> leaf (core, forbidden for sim);
    // mid's own back-edge is sanctioned, so only the includer fires.
    std::vector<FileScan> scans;
    scans.push_back(scanSource("src/core/leaf.hpp", "#pragma once\n"));
    scans.push_back(scanSource("src/sim/mid.hpp",
        "#pragma once\n"
        "// copra-lint: allow(layering) -- sanctioned back-edge\n"
        "#include \"core/leaf.hpp\"\n"));
    scans.push_back(scanSource("src/sim/top.cc",
        "#include \"sim/mid.hpp\"\n"));
    auto graph = copra::lint::buildIncludeGraph(scans);
    auto findings = copra::lint::runGraphRules(scans, graph);
    ASSERT_EQ(countRule(findings, "layering"), 1);
    const Finding &f = findings[0];
    EXPECT_EQ(f.rel, "src/sim/top.cc");
    EXPECT_EQ(f.line, 1);
    EXPECT_NE(f.message.find("include-through"), std::string::npos);
    EXPECT_NE(f.message.find(
        "src/sim/top.cc -> src/sim/mid.hpp -> src/core/leaf.hpp"),
        std::string::npos);
}

TEST(Graph, DotDumpClustersModulesAndMarksBackEdges)
{
    std::vector<FileScan> scans;
    scans.push_back(scanSource("src/sim/a.hpp", "#pragma once\n"));
    scans.push_back(scanSource("src/trace/bad.hpp",
        "#pragma once\n#include \"sim/a.hpp\"\n"));
    auto graph = copra::lint::buildIncludeGraph(scans);
    std::string dot = copra::lint::graphToDot(graph);
    EXPECT_NE(dot.find("digraph copra_includes"), std::string::npos);
    EXPECT_NE(dot.find("cluster_sim"), std::string::npos);
    EXPECT_NE(dot.find("cluster_trace"), std::string::npos);
    EXPECT_NE(dot.find(
        "\"src/trace/bad.hpp\" -> \"src/sim/a.hpp\" [color=red"),
        std::string::npos);
}

TEST(Tree, MissingPathIsAHardError)
{
    auto tree = copra::lint::lintTreeFull(COPRA_LINT_REPO_ROOT,
                                          {"no_such_dir"});
    ASSERT_EQ(tree.errors.size(), 1u);
    EXPECT_NE(tree.errors[0].find("no_such_dir"), std::string::npos);
    EXPECT_NE(tree.errors[0].find("no such file or directory"),
              std::string::npos);
}

TEST(SelfTest, PassesOnTheShippedCorpus)
{
    std::string report;
    bool ok = copra::lint::selfTest(COPRA_LINT_REPO_ROOT,
                                    "tests/lint_corpus", report);
    EXPECT_TRUE(ok) << report;
}

TEST(SelfTest, FailsOnMissingCorpus)
{
    std::string report;
    EXPECT_FALSE(copra::lint::selfTest(COPRA_LINT_REPO_ROOT,
                                       "tests/no_such_corpus", report));
    EXPECT_FALSE(report.empty());
}

TEST(Tree, RepositoryLintsClean)
{
    auto tree = copra::lint::lintTreeFull(
        COPRA_LINT_REPO_ROOT, {"src", "bench", "tests", "tools"});
    for (const std::string &e : tree.errors)
        ADD_FAILURE() << "path error: " << e;
    for (const Finding &f : tree.findings)
        ADD_FAILURE() << f.rel << ":" << f.line << ": [" << f.rule
                      << "] " << f.message;
}

} // namespace
