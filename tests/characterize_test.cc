/**
 * @file
 * Unit tests for workload fingerprinting (core/characterize.hpp):
 * history-conditioned entropy on traces with known closed-form values,
 * fingerprint invariants over synthetic suite workloads, family
 * labeling, JSON emission, and the doc renderer's drift-relevant
 * structure.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/characterize.hpp"
#include "workload/frontier.hpp"
#include "workload/profiles.hpp"

namespace copra::core {
namespace {

trace::Trace
condTrace(const std::vector<std::pair<uint64_t, bool>> &outcomes)
{
    trace::Trace t("unit", 1);
    for (const auto &[pc, taken] : outcomes)
        t.append({pc, pc + 64, trace::BranchKind::Conditional, taken});
    return t;
}

/** Strictly alternating T,N,T,N... at one pc. */
trace::Trace
alternatingTrace(size_t n)
{
    std::vector<std::pair<uint64_t, bool>> outcomes;
    for (size_t i = 0; i < n; ++i)
        outcomes.emplace_back(0x100, (i & 1) == 0);
    return condTrace(outcomes);
}

TEST(CharacterizeEntropy, AlternatingBranchIsOneBitUnconditioned)
{
    trace::Trace t = alternatingTrace(4096);
    EXPECT_NEAR(globalConditionedEntropyBits(t, 0), 1.0, 1e-9);
    EXPECT_NEAR(localConditionedEntropyBits(t, 0), 1.0, 1e-9);
}

TEST(CharacterizeEntropy, OneHistoryBitExplainsAlternation)
{
    // After seeing the previous outcome, the next is fully determined;
    // only the single history-less first branch contributes entropy,
    // and it lands in a deterministic context anyway.
    trace::Trace t = alternatingTrace(4096);
    EXPECT_NEAR(globalConditionedEntropyBits(t, 1), 0.0, 1e-6);
    EXPECT_NEAR(localConditionedEntropyBits(t, 1), 0.0, 1e-6);
}

TEST(CharacterizeEntropy, AlwaysTakenBranchIsZeroEntropy)
{
    std::vector<std::pair<uint64_t, bool>> outcomes(1000, {0x100, true});
    trace::Trace t = condTrace(outcomes);
    for (unsigned depth : {0u, 1u, 4u, 8u})
        EXPECT_DOUBLE_EQ(globalConditionedEntropyBits(t, depth), 0.0)
            << "depth " << depth;
}

TEST(CharacterizeEntropy, BiasedBranchMatchesBinaryEntropyFormula)
{
    // 3-in-4 taken at a single pc: H = -(3/4)log2(3/4) - (1/4)log2(1/4).
    std::vector<std::pair<uint64_t, bool>> outcomes;
    for (int i = 0; i < 4000; ++i)
        outcomes.emplace_back(0x100, i % 4 != 0);
    trace::Trace t = condTrace(outcomes);
    double expected = -(0.75 * std::log2(0.75) + 0.25 * std::log2(0.25));
    EXPECT_NEAR(globalConditionedEntropyBits(t, 0), expected, 1e-9);
}

TEST(CharacterizeEntropy, LocalHistorySeparatesInterleavedBranches)
{
    // Branch A always taken, branch B always not, perfectly interleaved.
    // Per-address: both deterministic at depth 0. Global depth 0 sees a
    // 50/50 mix (1 bit), but 1 global bit identifies which branch is
    // next, so it collapses too.
    std::vector<std::pair<uint64_t, bool>> outcomes;
    for (int i = 0; i < 2000; ++i) {
        outcomes.emplace_back(0x100, true);
        outcomes.emplace_back(0x200, false);
    }
    trace::Trace t = condTrace(outcomes);
    EXPECT_NEAR(localConditionedEntropyBits(t, 0), 0.0, 1e-9);
    EXPECT_NEAR(globalConditionedEntropyBits(t, 0), 1.0, 1e-9);
    EXPECT_NEAR(globalConditionedEntropyBits(t, 1), 0.0, 1e-6);
}

TEST(CharacterizeEntropy, LoopTripCountNeedsEnoughHistoryBits)
{
    // A trip-4 loop body (T,T,T,N repeating): 2 history bits cannot
    // distinguish position 3 of TTTN from positions 0-1, but 3 bits
    // pin every position exactly.
    std::vector<std::pair<uint64_t, bool>> outcomes;
    for (int i = 0; i < 4000; ++i)
        outcomes.emplace_back(0x100, i % 4 != 3);
    trace::Trace t = condTrace(outcomes);
    EXPECT_GT(globalConditionedEntropyBits(t, 2), 0.1);
    EXPECT_NEAR(globalConditionedEntropyBits(t, 3), 0.0, 1e-6);
}

TEST(CharacterizeEntropy, DeeperHistoryNeverHurts)
{
    trace::Trace t = workload::makeBenchmarkTrace("gcc", 30000, 0);
    double prev_g = globalConditionedEntropyBits(t, 0);
    double prev_l = localConditionedEntropyBits(t, 0);
    for (unsigned depth : {2u, 4u, 8u, 12u}) {
        double g = globalConditionedEntropyBits(t, depth);
        double l = localConditionedEntropyBits(t, depth);
        // Conditioning on more bits cannot increase empirical entropy.
        EXPECT_LE(g, prev_g + 1e-9) << "global depth " << depth;
        EXPECT_LE(l, prev_l + 1e-9) << "local depth " << depth;
        prev_g = g;
        prev_l = l;
    }
}

TEST(CharacterizeFingerprint, CoversFootprintBiasAndPredictor)
{
    trace::Trace t = workload::makeBenchmarkTrace("compress", 20000, 0);
    CharacterizeOptions options;
    WorkloadFingerprint fp = characterizeTrace(t, options);
    EXPECT_EQ(fp.name, "compress");
    EXPECT_EQ(fp.family, "paper");
    EXPECT_EQ(fp.records, t.size());
    EXPECT_EQ(fp.conditionals, t.conditionalCount());
    EXPECT_GT(fp.staticBranches, 0u);
    EXPECT_GT(fp.takenRate, 0.0);
    EXPECT_LT(fp.takenRate, 1.0);
    EXPECT_GE(fp.biasedFraction99, 0.0);
    EXPECT_LE(fp.biasedFraction99, 1.0);
    ASSERT_EQ(fp.curve.size(), options.depths.size());
    EXPECT_FALSE(std::isnan(fp.gshareAccuracyPercent));
    EXPECT_GT(fp.gshareAccuracyPercent, 50.0);
    EXPECT_GE(fp.globalHistoryGainBits(), -1e-9);
    EXPECT_GE(fp.localHistoryGainBits(), -1e-9);
}

TEST(CharacterizeFingerprint, NoPredictorAndNoConditionalsYieldNaN)
{
    trace::Trace t = workload::makeBenchmarkTrace("xlisp", 5000, 0);
    CharacterizeOptions options;
    options.withPredictor = false;
    WorkloadFingerprint fp = characterizeTrace(t, options);
    EXPECT_TRUE(std::isnan(fp.gshareAccuracyPercent));
    EXPECT_EQ(fp.h2pBranches, 0u);

    trace::Trace jumps("jumps-only", 1);
    for (int i = 0; i < 100; ++i)
        jumps.append({0x100, 0x200, trace::BranchKind::Jump, true});
    options.withPredictor = true;
    WorkloadFingerprint empty = characterizeTrace(jumps, options);
    EXPECT_TRUE(std::isnan(empty.gshareAccuracyPercent));
    EXPECT_EQ(empty.conditionals, 0u);
}

TEST(CharacterizeFingerprint, FamiliesAreLabeled)
{
    EXPECT_EQ(workloadFamily("gcc"), "paper");
    EXPECT_EQ(workloadFamily("interp"), "frontier");
    EXPECT_EQ(workloadFamily("datadep"), "frontier");
    EXPECT_EQ(workloadFamily("nestloop"), "frontier");
    EXPECT_EQ(workloadFamily("sample_foreign"), "foreign");
}

TEST(CharacterizeJson, EmitsSchemaDocumentWithNullForNaN)
{
    trace::Trace t = workload::makeBenchmarkTrace("interp", 10000, 0);
    CharacterizeOptions options;
    options.withPredictor = false;
    WorkloadFingerprint fp = characterizeTrace(t, options);
    std::string doc = fingerprintsToJson({fp}).dump(2);
    EXPECT_NE(doc.find("\"schema_version\""), std::string::npos);
    EXPECT_NE(doc.find("fingerprint.schema.json"), std::string::npos);
    EXPECT_NE(doc.find("\"interp\""), std::string::npos);
    EXPECT_NE(doc.find("\"gshare_accuracy_percent\": null"),
              std::string::npos);
    EXPECT_EQ(doc.find("nan"), std::string::npos);
}

TEST(CharacterizeDoc, TableHasOneRowPerFingerprintInOrder)
{
    CharacterizeOptions options;
    options.withPredictor = false;
    std::vector<WorkloadFingerprint> fps;
    for (const char *name : {"compress", "interp"}) {
        trace::Trace t = workload::makeBenchmarkTrace(name, 5000, 0);
        fps.push_back(characterizeTrace(t, options));
    }
    std::string table = renderFingerprintTable(fps);
    size_t compress_at = table.find("| compress ");
    size_t interp_at = table.find("| interp ");
    EXPECT_NE(compress_at, std::string::npos);
    EXPECT_NE(interp_at, std::string::npos);
    EXPECT_LT(compress_at, interp_at);

    std::string doc = renderWorkloadsDoc(fps, 5000);
    // The drift-gate contract: the doc names its generator and embeds
    // the table verbatim, so adding a family without regenerating is a
    // byte-level diff the gate catches.
    EXPECT_NE(doc.find("copra_characterize --doc-workloads"),
              std::string::npos);
    EXPECT_NE(doc.find(table), std::string::npos);
}

} // namespace
} // namespace copra::core
