/**
 * @file
 * Unit tests for the interference-free gshare and PAs predictors.
 */

#include <gtest/gtest.h>

#include "predictor/interference_free.hpp"
#include "predictor/two_level.hpp"
#include "sim/driver.hpp"
#include "workload/patterns.hpp"

namespace copra::predictor {
namespace {

trace::BranchRecord
cond(uint64_t pc, bool taken = true)
{
    return {pc, pc + 64, trace::BranchKind::Conditional, taken};
}

TEST(IfGshare, NoCrossBranchInterference)
{
    // Two branches trained in opposite directions under identical global
    // histories must not disturb each other. Alternate A-taken, B-not
    // so each sees the same history at prediction time eventually.
    IfGshare pred(4);
    for (int i = 0; i < 50; ++i) {
        pred.update(cond(0x100, true), true);
        pred.update(cond(0x200, false), false);
    }
    // The history preceding A is ...TNTN (B last); preceding B is ...T.
    EXPECT_TRUE(pred.predict(cond(0x100)));
    pred.update(cond(0x100, true), true);
    EXPECT_FALSE(pred.predict(cond(0x200)));
}

TEST(IfGshare, AllocatesPerPatternCounters)
{
    IfGshare pred(4);
    EXPECT_EQ(pred.countersAllocated(), 0u);
    pred.update(cond(0x100), true);
    EXPECT_EQ(pred.countersAllocated(), 1u);
    pred.update(cond(0x100), true); // history changed -> new counter
    EXPECT_EQ(pred.countersAllocated(), 2u);
}

TEST(IfGshare, LearnsCorrelationExactly)
{
    IfGshare pred(8);
    auto trace =
        workload::correlatedPairTrace(0x100, 0x200, 0.5, 1.0, 10000, 3);
    sim::Ledger ledger;
    sim::run(trace, pred, &ledger);
    // X == Y exactly (p2 = 1.0): the interference-free predictor should
    // predict X almost perfectly after warmup.
    EXPECT_GT(100.0 * ledger.branch(0x200).accuracy(), 98.0);
}

TEST(IfGshare, ResetClearsState)
{
    IfGshare pred(8);
    pred.update(cond(0x100), true);
    pred.reset();
    EXPECT_EQ(pred.countersAllocated(), 0u);
}

TEST(IfGshare, NameMentionsHistory)
{
    EXPECT_EQ(IfGshare(16).name(), "IF-gshare(h=16)");
}

TEST(IfPas, LearnsPeriodicPatternPerBranch)
{
    IfPas pred(8);
    auto trace = workload::periodicTrace(0x100, {true, true, false}, 2000);
    auto result = sim::run(trace, pred);
    EXPECT_GT(result.accuracyPercent(), 98.0);
}

TEST(IfPas, ImmuneToGlobalNoise)
{
    // Unlike a global predictor, IF PAs sees only the branch's own
    // outcomes, so interleaved noise branches change nothing about the
    // periodic branch's accuracy.
    auto periodic = workload::periodicTrace(0x100, {true, false}, 3000);
    auto noise = workload::biasedTrace(0x200, 0.5, 3000, 5);

    IfPas clean(12);
    sim::Ledger clean_ledger;
    sim::run(periodic, clean, &clean_ledger);

    IfPas noisy(12);
    sim::Ledger noisy_ledger;
    sim::run(workload::interleave({periodic, noise}), noisy,
             &noisy_ledger);

    EXPECT_EQ(clean_ledger.branch(0x100).correct,
              noisy_ledger.branch(0x100).correct);
}

TEST(IfPas, TracksBranchesIndependently)
{
    IfPas pred(8);
    EXPECT_EQ(pred.branchesTracked(), 0u);
    pred.update(cond(0x100), true);
    pred.update(cond(0x200), false);
    EXPECT_EQ(pred.branchesTracked(), 2u);
}

TEST(IfPas, CannotSeePastItsHistoryLength)
{
    // A loop longer than the per-branch history cannot have its exit
    // predicted: the all-taken history is ambiguous (paper §4.2.2).
    IfPas pred(8);
    auto trace = workload::loopTrace(0x100, 20, 400);
    sim::Ledger ledger;
    sim::run(trace, pred, &ledger);
    double acc = 100.0 * ledger.branch(0x100).accuracy();
    // It predicts the body perfectly but misses every exit: 19/20.
    EXPECT_LT(acc, 96.5);
    EXPECT_GT(acc, 90.0);
}

TEST(IfPas, SeesExitOfShortLoops)
{
    IfPas pred(8);
    auto trace = workload::loopTrace(0x100, 6, 1000);
    sim::Ledger ledger;
    sim::run(trace, pred, &ledger);
    EXPECT_GT(100.0 * ledger.branch(0x100).accuracy(), 98.0);
}

TEST(IfPas, ResetClearsState)
{
    IfPas pred(8);
    pred.update(cond(0x100), true);
    pred.reset();
    EXPECT_EQ(pred.branchesTracked(), 0u);
}

TEST(InterferenceContrast, IfPredictorBeatsSharedPhtUnderForcedAliasing)
{
    // Force destructive PHT interference: with a 2-bit history-only
    // index (GAg) and the rotation A, noise, B, the pattern "A=1,n"
    // preceding B and the pattern "n,B=0" preceding A overlap at "10",
    // so the always-taken A and never-taken B thrash one shared counter
    // whenever the noise bit lines up. Keying by (pc, history) — the
    // interference-free construction — removes exactly that loss.
    auto a = workload::biasedTrace(0x100, 1.0, 4000, 1);
    auto b = workload::biasedTrace(0x140, 0.0, 4000, 2);
    auto noise = workload::biasedTrace(0x204, 0.5, 4000, 3);
    auto trace = workload::interleave({a, noise, b});

    TwoLevel shared(TwoLevelConfig::gag(2));
    IfGshare clean(2);
    auto shared_res = sim::run(trace, shared);
    auto clean_res = sim::run(trace, clean);
    EXPECT_GT(clean_res.accuracyPercent(),
              shared_res.accuracyPercent() + 5.0);
}

} // namespace
} // namespace copra::predictor
