/**
 * @file
 * Property tests for relationships the paper relies on, checked over
 * both fuzzed adversarial traces and the synthetic benchmark suite.
 *
 * Two of the three are theorems and hold exactly on every trace:
 * per-pc-majority ideal static dominates any per-pc-constant rule
 * (always-taken, always-not-taken, and — when conditional targets are
 * per-pc constant — BTFNT). The third family (IF gshare vs gshare,
 * selective-history growth) is *not* a pointwise theorem — DESIGN.md §6
 * documents the training-time and greedy-selection caveats — so those
 * are pinned as suite-level empirical facts on the deterministic
 * benchmark traces, where they are stable run-to-run by construction.
 */

#include <gtest/gtest.h>

#include <map>

#include "check/fuzz.hpp"
#include "core/experiments.hpp"
#include "core/oracle.hpp"
#include "predictor/ideal_static.hpp"
#include "predictor/interference_free.hpp"
#include "predictor/static_pred.hpp"
#include "predictor/two_level.hpp"
#include "sim/driver.hpp"
#include "workload/profiles.hpp"

namespace copra {
namespace {

core::ExperimentConfig
smallConfig(uint64_t branches)
{
    core::ExperimentConfig config;
    config.branches = branches;
    return config;
}

double
accuracyOf(const trace::Trace &t, predictor::Predictor &&pred)
{
    return sim::run(t, pred).accuracyPercent();
}

/** Do all conditional records at each pc share one target? */
bool
conditionalTargetsArePerPcConstant(const trace::Trace &t)
{
    std::map<uint64_t, uint64_t> target;
    for (const auto &rec : t.records()) {
        if (rec.kind != trace::BranchKind::Conditional)
            continue;
        auto [it, fresh] = target.emplace(rec.pc, rec.target);
        if (!fresh && it->second != rec.target)
            return false;
    }
    return true;
}

TEST(PaperInvariants, IdealStaticDominatesAlwaysTakenAndNotTaken)
{
    // Theorem: per-pc majority beats any fixed direction, per pc, hence
    // in aggregate. Must hold on *every* trace, including adversarial
    // fuzz streams.
    std::vector<trace::Trace> traces;
    for (uint64_t seed = 1; seed <= 10; ++seed)
        traces.push_back(check::fuzzTrace(seed, 2000));
    for (const std::string &name : workload::benchmarkNames())
        traces.push_back(
            core::makeExperimentTrace(name, smallConfig(5000)));

    for (const trace::Trace &t : traces) {
        predictor::IdealStatic ideal =
            predictor::IdealStatic::fromTrace(t);
        double ideal_acc = sim::run(t, ideal).accuracyPercent();
        EXPECT_GE(ideal_acc, accuracyOf(t, predictor::AlwaysTaken()))
            << t.name();
        EXPECT_GE(ideal_acc, accuracyOf(t, predictor::AlwaysNotTaken()))
            << t.name();
    }
}

TEST(PaperInvariants, IdealStaticDominatesBtfntOnConstantTargetTraces)
{
    // BTFNT is per-pc constant only when each conditional's target is;
    // on such traces majority-direction dominance extends to it. The
    // benchmark suite satisfies the precondition by construction.
    size_t checked = 0;
    for (const std::string &name : workload::benchmarkNames()) {
        trace::Trace t = core::makeExperimentTrace(name, smallConfig(5000));
        if (!conditionalTargetsArePerPcConstant(t))
            continue; // precondition violated -> theorem does not apply
        ++checked;
        predictor::IdealStatic ideal =
            predictor::IdealStatic::fromTrace(t);
        double ideal_acc = sim::run(t, ideal).accuracyPercent();
        EXPECT_GE(ideal_acc, accuracyOf(t, predictor::Btfnt()))
            << t.name();
    }
    EXPECT_GT(checked, 0u)
        << "no benchmark trace had per-pc-constant conditional targets";
}

TEST(PaperInvariants, IfGshareBeatsGshareAtEqualHistoryOnSuite)
{
    // Not a pointwise theorem (training time; DESIGN.md §6) — but with a
    // deliberately small shared PHT, destructive aliasing dominates and
    // the interference-free version must win or tie on every benchmark.
    // Traces are seeded and deterministic, so this is stable.
    const unsigned history = 8;
    for (const std::string &name : workload::benchmarkNames()) {
        trace::Trace t =
            core::makeExperimentTrace(name, smallConfig(20000));
        double aliased = accuracyOf(
            t, predictor::TwoLevel(
                   predictor::TwoLevelConfig::gshare(history)));
        double interference_free =
            accuracyOf(t, predictor::IfGshare(history));
        EXPECT_GE(interference_free + 0.05, aliased)
            << name << ": IF gshare lost to aliased gshare at h="
            << history;
    }
}

TEST(PaperInvariants, SelectiveHistoryAccuracyGrowsWithSetSize)
{
    // Greedy selection is not strictly monotone branch-by-branch, and
    // even suite-level accuracy can dip a hair on the 2 -> 3 step when
    // the 27-entry tables pay their training time (DESIGN.md §6). What
    // does hold, deterministically, on traces long enough to train: the
    // 1 -> 2 step never loses, the 2 -> 3 dip stays within training
    // noise, and the full 1 -> 3 step is a net win.
    core::OracleConfig config;
    config.historyDepth = 16;
    config.candidatePool = 14;
    config.maxSelect = 3;
    for (const char *name : {"compress", "gcc"}) {
        trace::Trace t =
            core::makeExperimentTrace(name, smallConfig(20000));
        core::SelectiveOracle oracle(t, config);
        double a1 = oracle.accuracyPercent(1);
        double a2 = oracle.accuracyPercent(2);
        double a3 = oracle.accuracyPercent(3);
        EXPECT_GE(a2, a1) << name;
        EXPECT_GE(a3 + 0.25, a2) << name;
        EXPECT_GE(a3, a1) << name
                          << ": size-3 selective history must not lose "
                             "to size-1 at suite level";
    }
}

TEST(PaperInvariants, GreedySelectionsAreNestedAndScoresBounded)
{
    // What greedy forward selection *does* guarantee per branch: the
    // size-s set is a strict prefix of the size-(s+1) set, set sizes
    // never exceed their nominal arity, and no score exceeds the
    // branch's execution count. (Pointwise score monotonicity is NOT
    // guaranteed — extending the pattern table can cost training time,
    // DESIGN.md §6 — so it is deliberately not asserted here.)
    core::OracleConfig config;
    config.historyDepth = 16;
    config.candidatePool = 8;
    trace::Trace t =
        core::makeExperimentTrace("compress", smallConfig(8000));
    core::SelectiveOracle oracle(t, config);
    size_t branches_checked = 0;
    for (const auto &[pc, sel] : oracle.branches()) {
        if (sel.execs == 0)
            continue;
        ++branches_checked;
        for (unsigned s = 0; s < 3; ++s) {
            EXPECT_LE(sel.chosen[s].size(), s + 1) << "pc " << pc;
            EXPECT_LE(sel.correct[s], sel.execs) << "pc " << pc;
        }
        for (unsigned s = 0; s + 1 < 3; ++s) {
            // Nesting: chosen[s] is a prefix of chosen[s+1].
            ASSERT_LE(sel.chosen[s].size(), sel.chosen[s + 1].size())
                << "pc " << pc;
            for (size_t i = 0; i < sel.chosen[s].size(); ++i)
                EXPECT_TRUE(sel.chosen[s][i] == sel.chosen[s + 1][i])
                    << "pc " << pc << " size " << s << " tag " << i;
        }
    }
    EXPECT_GT(branches_checked, 0u);
}

} // namespace
} // namespace copra
