/**
 * @file
 * The differential-verification acceptance gate.
 *
 * 1. Zero mismatches between every optimized predictor path (scalar,
 *    batched, sim::run, runAllParallel) and the clarity-first reference
 *    models over 100 fuzzed traces at a fixed seed range.
 * 2. Self-test: each deliberately-injected predictor bug is caught by
 *    the same harness and shrunk to a reproducer of at most 1000
 *    branches — a differential suite that cannot catch a planted
 *    off-by-one proves nothing.
 * 3. The delta-debugging minimizer is sound (output still fails),
 *    effective (output is much smaller), and deterministic.
 */

#include <gtest/gtest.h>

#include <memory>

#include "check/differential.hpp"
#include "check/fuzz.hpp"
#include "check/ref_models.hpp"
#include "predictor/two_level.hpp"

namespace copra::check {
namespace {

using predictor::TwoLevelConfig;

TEST(Differential, OptimizedMatchesReferenceOver100FuzzedTraces)
{
    SuiteOptions options;
    options.seedBase = 1;
    options.traces = 100;
    options.conditionals = 2000;
    options.minimize = true;     // no-op when nothing fails
    options.checkParallel = true;
    SuiteReport report = runCheckSuite(options);
    EXPECT_EQ(report.tracesRun, 100u);
    EXPECT_GT(report.comparisons, 100u);
    EXPECT_TRUE(report.ok()) << formatReport(report);
}

TEST(Differential, DetectsGeometryMismatchImmediately)
{
    // Sensitivity check: a pair whose two sides genuinely differ (gshare
    // with different history lengths) must produce mismatches on an
    // adversarial trace — if this passes silently the diff is vacuous.
    CheckPair wrong{
        "gshare(8)-vs-ref-gshare(5)",
        [] {
            return std::make_unique<predictor::TwoLevel>(
                TwoLevelConfig::gshare(8));
        },
        [] {
            return std::make_unique<RefTwoLevel>(TwoLevelConfig::gshare(5));
        }};
    bool caught = false;
    for (uint64_t seed = 1; seed <= 5 && !caught; ++seed)
        caught = !diffPair(fuzzTrace(seed, 2000), wrong, false).ok();
    EXPECT_TRUE(caught);
}

TEST(Differential, EveryInjectedBugIsCaughtAndShrunk)
{
    for (unsigned b = 0; b < kInjectedBugCount; ++b) {
        auto bug = static_cast<InjectedBug>(b);
        SuiteOptions options;
        options.seedBase = 1;
        options.traces = 6;
        options.conditionals = 1500;
        options.minimize = true;
        options.checkParallel = true;
        SuiteReport report =
            runCheckSuite(options, {injectedBugPair(bug)});
        if (bug == InjectedBug::HotPathAlloc) {
            // Predicts bit-identically while heap-allocating per SoA
            // batch: invisible to every differential path by
            // construction. The runtime allocation gate owns it —
            // copra_check's --inject self-test (which links the
            // counting operator-new probe) requires the catch.
            ASSERT_TRUE(report.ok())
                << injectedBugName(bug)
                << " diverged; it must stay differentially invisible "
                   "so it proves the hot gates catch what diffing "
                   "cannot";
            continue;
        }
        ASSERT_FALSE(report.ok())
            << injectedBugName(bug) << " was not caught";
        for (const SuiteFailure &failure : report.failures) {
            EXPECT_LE(failure.reproducer.size(), 1000u)
                << injectedBugName(bug)
                << ": reproducer not shrunk below 1000 branches";
            EXPECT_GT(failure.reproducer.size(), 0u);
        }
    }
}

TEST(Differential, BatchOnlyBugEscapesScalarPathButNotBatched)
{
    // GshareBatchStaleHistory is constructed so the scalar path is
    // faithful and only the batch entry point diverges; catching it
    // proves the harness exercises predictUpdateBatch specifically.
    CheckPair pair = injectedBugPair(InjectedBug::GshareBatchStaleHistory);
    bool scalar_diverged = false;
    bool batch_caught = false;
    for (uint64_t seed = 1; seed <= 6; ++seed) {
        trace::Trace t = fuzzTrace(seed, 1500);
        DiffResult result = diffPair(t, pair, false);
        for (const Mismatch &m : result.mismatches) {
            if (m.path == "scalar")
                scalar_diverged = true;
            else
                batch_caught = true;
        }
    }
    EXPECT_FALSE(scalar_diverged)
        << "planted bug must be invisible to the scalar path";
    EXPECT_TRUE(batch_caught)
        << "batched/run paths must expose the stale-history bug";
}

TEST(Differential, ScalarAndBatchedStreamsAgreeForCleanPredictor)
{
    // Direct stream-level check, independent of diffPair's plumbing.
    for (uint64_t seed : {1ull, 9ull, 23ull}) {
        trace::Trace t = fuzzTrace(seed, 1200);
        predictor::TwoLevel a(TwoLevelConfig::pas(7, 5, 3));
        predictor::TwoLevel b(TwoLevelConfig::pas(7, 5, 3));
        std::vector<uint8_t> scalar = scalarPredictions(t, a);
        std::vector<uint8_t> batched = batchedPredictions(t, b);
        ASSERT_EQ(scalar.size(), batched.size()) << "seed " << seed;
        for (size_t i = 0; i < scalar.size(); ++i)
            ASSERT_EQ(scalar[i], batched[i])
                << "seed " << seed << " conditional " << i;
    }
}

TEST(Differential, MinimizerOutputStillFailsAndIsSmall)
{
    // Predicate: trace contains at least 3 conditionals at pc 0x40.
    // ddmin must keep exactly the witnesses it needs and nothing else.
    trace::Trace t = fuzzTrace(4, 800);
    for (int i = 0; i < 5; ++i)
        t.append({0x40, 0x80, trace::BranchKind::Conditional, i % 2 == 0});
    auto predicate = [](const trace::Trace &candidate) {
        size_t hits = 0;
        for (const auto &rec : candidate.records())
            if (rec.pc == 0x40 &&
                rec.kind == trace::BranchKind::Conditional)
                ++hits;
        return hits >= 3;
    };
    ASSERT_TRUE(predicate(t));
    trace::Trace shrunk = minimizeTrace(t, predicate);
    EXPECT_TRUE(predicate(shrunk)) << "minimizer lost the failure";
    EXPECT_EQ(shrunk.size(), 3u)
        << "minimizer should keep only the 3 required witnesses";

    // Determinism: same input, same predicate, same output.
    trace::Trace again = minimizeTrace(t, predicate);
    ASSERT_EQ(again.size(), shrunk.size());
    for (size_t i = 0; i < shrunk.size(); ++i)
        EXPECT_EQ(again[i], shrunk[i]);
}

TEST(Differential, MinimizerHandlesAlwaysFailingAndNeverFailing)
{
    trace::Trace t = fuzzTrace(2, 200);
    // Always-failing predicate: shrinks to the empty trace.
    trace::Trace empty =
        minimizeTrace(t, [](const trace::Trace &) { return true; });
    EXPECT_EQ(empty.size(), 0u);
    // The contract requires the input itself to fail; minimizeTrace on a
    // passing trace just returns it unchanged.
    trace::Trace same =
        minimizeTrace(t, [](const trace::Trace &) { return false; });
    EXPECT_EQ(same.size(), t.size());
}

TEST(Differential, DefaultRosterCoversThePaperFamilies)
{
    std::vector<CheckPair> pairs = defaultCheckPairs();
    EXPECT_GE(pairs.size(), 12u);
    auto has = [&](const std::string &needle) {
        for (const CheckPair &p : pairs)
            if (p.name.find(needle) != std::string::npos)
                return true;
        return false;
    };
    EXPECT_TRUE(has("gshare"));
    EXPECT_TRUE(has("PAs("));
    EXPECT_TRUE(has("GAg("));
    EXPECT_TRUE(has("bimodal"));
    EXPECT_TRUE(has("loop"));
    EXPECT_TRUE(has("hybrid"));
    for (const CheckPair &p : pairs) {
        ASSERT_TRUE(p.optimized) << p.name;
        ASSERT_TRUE(p.reference) << p.name;
    }
}

} // namespace
} // namespace copra::check
