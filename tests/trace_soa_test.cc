/**
 * @file
 * Tests for the structure-of-arrays trace image and the memory-mapped
 * v2 loader: SoA <-> AoS round-trip equality over fuzzed traces,
 * conditional-segment indexing, cache sharing across trace copies, and
 * the mmap fast path's rejection of truncated / garbage / wrong-version
 * files (with the trace cache falling back to the stream decoder).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "check/fuzz.hpp"
#include "trace/trace.hpp"
#include "trace/trace_cache.hpp"
#include "trace/trace_io.hpp"
#include "trace/trace_soa.hpp"

namespace copra::trace {
namespace {

namespace fs = std::filesystem;

TEST(TraceSoa, RoundTripsEveryFuzzedTrace)
{
    // Property over the adversarial fuzz corpus: transposing to columns
    // and materializing back must reproduce every record bit for bit,
    // and the columns must agree with the records index for index.
    for (uint64_t seed = 1; seed <= 40; ++seed) {
        Trace t = check::fuzzTrace(seed, 700);
        const SoABlocks &soa = t.soa();
        ASSERT_EQ(soa.size(), t.size()) << "seed " << seed;
        EXPECT_EQ(soa.conditionalCount(), t.conditionalCount());
        for (size_t i = 0; i < t.size(); ++i) {
            const BranchRecord &rec = t[i];
            ASSERT_EQ(soa.pc()[i], rec.pc) << "seed " << seed;
            ASSERT_EQ(soa.target()[i], rec.target);
            ASSERT_EQ(soa.kind()[i], static_cast<uint8_t>(rec.kind));
            ASSERT_EQ(soa.taken()[i] != 0, rec.taken);
            ASSERT_EQ(soa.record(i), rec);
        }
        std::vector<BranchRecord> back = soa.toRecords();
        ASSERT_EQ(back.size(), t.size());
        for (size_t i = 0; i < back.size(); ++i)
            ASSERT_EQ(back[i], t[i]) << "seed " << seed << " rec " << i;
    }
}

TEST(TraceSoa, SegmentsCoverExactlyTheConditionalRuns)
{
    for (uint64_t seed = 1; seed <= 40; ++seed) {
        Trace t = check::fuzzTrace(seed, 500);
        const SoABlocks &soa = t.soa();
        std::vector<uint8_t> covered(t.size(), 0);
        uint64_t in_segments = 0;
        size_t prev_end = 0;
        for (const SoABlocks::Segment &seg : soa.conditionalSegments()) {
            ASSERT_GT(seg.count, 0u);
            ASSERT_GE(seg.begin, prev_end) << "segments must not overlap";
            // Maximality: the records flanking the run are never
            // conditional.
            if (seg.begin > 0) {
                EXPECT_NE(t[seg.begin - 1].kind, BranchKind::Conditional);
            }
            if (seg.begin + seg.count < t.size()) {
                EXPECT_NE(t[seg.begin + seg.count].kind,
                          BranchKind::Conditional);
            }
            for (size_t i = seg.begin; i < seg.begin + seg.count; ++i) {
                EXPECT_EQ(t[i].kind, BranchKind::Conditional);
                covered[i] = 1;
            }
            in_segments += seg.count;
            prev_end = seg.begin + seg.count;
        }
        EXPECT_EQ(in_segments, t.conditionalCount()) << "seed " << seed;
        for (size_t i = 0; i < t.size(); ++i)
            EXPECT_EQ(covered[i] != 0,
                      t[i].kind == BranchKind::Conditional)
                << "seed " << seed << " rec " << i;
    }
}

TEST(TraceSoa, BlocksTileTheColumns)
{
    Trace t = check::fuzzTrace(5, 2000);
    const SoABlocks &soa = t.soa();
    size_t seen = 0;
    for (size_t b = 0; b < soa.blockCount(); ++b) {
        SoABlocks::BlockView view = soa.block(b);
        EXPECT_EQ(view.firstRecord, seen);
        ASSERT_EQ(view.pc.size(), view.taken.size());
        for (size_t i = 0; i < view.pc.size(); ++i)
            ASSERT_EQ(view.pc[i], t[seen + i].pc);
        seen += view.pc.size();
    }
    EXPECT_EQ(seen, t.size());
}

TEST(TraceSoa, CopiesShareTheCachedImage)
{
    Trace t = check::fuzzTrace(9, 300);
    const SoABlocks &first = t.soa();
    Trace copy = t; // shares storage and the SoA cache
    EXPECT_EQ(&copy.soa(), &first);
    // A prefix view is a different window; it builds its own image.
    Trace pre = t.prefix(50);
    const SoABlocks &pre_soa = pre.soa();
    EXPECT_NE(&pre_soa, &first);
    EXPECT_EQ(pre_soa.conditionalCount(), 50u);
}

class MappedLoadTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = fs::path(::testing::TempDir()) /
            ("copra-mmap-" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name()));
        fs::create_directories(dir_);
    }

    void TearDown() override { fs::remove_all(dir_); }

    std::string
    writeFile(const std::string &name, const std::string &bytes)
    {
        std::string path = (dir_ / name).string();
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
        return path;
    }

    /** Serialize @p t in the current (v2) binary format. */
    std::string
    v2Bytes(const Trace &t)
    {
        std::ostringstream os;
        writeBinary(t, os);
        return os.str();
    }

    /** Serialize @p t in the legacy v1 record-interleaved format. */
    std::string
    v1Bytes(const Trace &t)
    {
        std::string out("COPRATRC", 8);
        auto u32 = [&](uint32_t v) {
            for (int i = 0; i < 4; ++i)
                out.push_back(char((v >> (8 * i)) & 0xff));
        };
        auto u64 = [&](uint64_t v) {
            for (int i = 0; i < 8; ++i)
                out.push_back(char((v >> (8 * i)) & 0xff));
        };
        u32(1); // format version
        u64(t.seed());
        u32(static_cast<uint32_t>(t.name().size()));
        out += t.name();
        u64(t.size());
        for (const BranchRecord &rec : t.records()) {
            u64(rec.pc);
            u64(rec.target);
            out.push_back(char(static_cast<uint8_t>(rec.kind)));
            out.push_back(char(rec.taken ? 1 : 0));
        }
        return out;
    }

    fs::path dir_;
};

TEST_F(MappedLoadTest, MapsV2FilesIdenticallyToTheStreamDecoder)
{
    for (uint64_t seed = 1; seed <= 10; ++seed) {
        Trace t = check::fuzzTrace(seed, 400);
        std::string path = writeFile("t.trc", v2Bytes(t));
        Trace mapped = loadBinaryMapped(path);
        Trace streamed = loadBinary(path);
        EXPECT_EQ(mapped.name(), t.name());
        EXPECT_EQ(mapped.seed(), t.seed());
        ASSERT_EQ(mapped.size(), streamed.size());
        for (size_t i = 0; i < mapped.size(); ++i)
            ASSERT_EQ(mapped[i], streamed[i]) << "seed " << seed;
        // The adopted columns must be immediately valid.
        EXPECT_EQ(mapped.soa().conditionalCount(), t.conditionalCount());
    }
}

TEST_F(MappedLoadTest, RejectsTruncatedGarbageAndWrongVersionFiles)
{
    Trace t = check::fuzzTrace(2, 200);
    std::string clean = v2Bytes(t);

    // Truncations at every structurally interesting point: mid-magic,
    // mid-header, mid-name, and mid-column.
    for (size_t cut : {size_t(0), size_t(4), size_t(12), size_t(39),
                       size_t(45), clean.size() - 1}) {
        std::string path =
            writeFile("cut.trc", clean.substr(0, cut));
        EXPECT_THROW(loadBinaryMapped(path), std::runtime_error)
            << "cut at " << cut;
    }

    // Trailing garbage breaks the exact-size check.
    EXPECT_THROW(loadBinaryMapped(writeFile("fat.trc", clean + "xx")),
                 std::runtime_error);

    // Arbitrary garbage and a smashed magic are rejected up front.
    EXPECT_THROW(loadBinaryMapped(writeFile("junk.trc",
                                            "not a trace at all")),
                 std::runtime_error);
    std::string bad_magic = clean;
    bad_magic[0] ^= 0x20;
    EXPECT_THROW(loadBinaryMapped(writeFile("magic.trc", bad_magic)),
                 std::runtime_error);

    // A well-formed v1 file is not mappable (wrong version) ...
    std::string v1_path = writeFile("v1.trc", v1Bytes(t));
    EXPECT_THROW(loadBinaryMapped(v1_path), std::runtime_error);
    // ... but the stream decoder still reads it, which is exactly the
    // fallback the cache uses.
    Trace back = loadBinary(v1_path);
    ASSERT_EQ(back.size(), t.size());
    for (size_t i = 0; i < t.size(); ++i)
        ASSERT_EQ(back[i], t[i]);

    // A missing file cannot be mapped at all.
    EXPECT_THROW(loadBinaryMapped((dir_ / "absent.trc").string()),
                 std::runtime_error);
}

TEST_F(MappedLoadTest, CacheFallsBackToStreamDecodeOnV1Content)
{
    // A v1-format file renamed into a v2 cache slot (e.g. copied from
    // an old cache by hand) must still load — through the fallback
    // decoder — rather than miss or crash.
    TraceCache cache(dir_.string());
    TraceCacheKey key{"legacy", 4, 7};
    Trace t("legacy", 7);
    t.append({0x100, 0x180, BranchKind::Conditional, true});
    t.append({0x104, 0x200, BranchKind::Jump, true});
    t.append({0x108, 0x090, BranchKind::Conditional, false});
    t.append({0x10c, 0x0a0, BranchKind::Conditional, true});
    writeFile(key.fileName(), v1Bytes(t));

    auto loaded = cache.load(key);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(loaded->name(), "legacy");
    ASSERT_EQ(loaded->size(), t.size());
    for (size_t i = 0; i < t.size(); ++i)
        EXPECT_EQ((*loaded)[i], t[i]);
}

} // namespace
} // namespace copra::trace
