/**
 * @file
 * Determinism tests for the parallel experiment engine: the parallel
 * paths (runAllParallel, the oracle's partitioned greedy selection, the
 * batched driver loop) must produce results bit-identical to the serial
 * paths for every thread count. Also the test the TSan ctest target
 * runs to catch data races in the sharding.
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "core/oracle.hpp"
#include "predictor/bimodal.hpp"
#include "predictor/interference_free.hpp"
#include "predictor/two_level.hpp"
#include "sim/driver.hpp"
#include "util/thread_pool.hpp"
#include "workload/profiles.hpp"

namespace copra::sim {
namespace {

trace::Trace
testTrace()
{
    return workload::makeBenchmarkTrace("gcc", 30000, 0);
}

std::vector<predictor::PredictorPtr>
predictorZoo()
{
    std::vector<predictor::PredictorPtr> zoo;
    zoo.push_back(std::make_unique<predictor::TwoLevel>(
        predictor::TwoLevelConfig::gshare(12)));
    zoo.push_back(std::make_unique<predictor::TwoLevel>(
        predictor::TwoLevelConfig::pas(10, 10, 4)));
    zoo.push_back(std::make_unique<predictor::TwoLevel>(
        predictor::TwoLevelConfig::gag(10)));
    zoo.push_back(std::make_unique<predictor::IfGshare>(12));
    zoo.push_back(std::make_unique<predictor::Bimodal>(12));
    return zoo;
}

std::vector<predictor::Predictor *>
raw(const std::vector<predictor::PredictorPtr> &zoo)
{
    std::vector<predictor::Predictor *> out;
    for (const auto &pred : zoo)
        out.push_back(pred.get());
    return out;
}

void
expectSameResults(const std::vector<RunResult> &a,
                  const std::vector<RunResult> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].predictorName, b[i].predictorName) << i;
        EXPECT_EQ(a[i].dynamicBranches, b[i].dynamicBranches) << i;
        EXPECT_EQ(a[i].correct, b[i].correct) << i;
    }
}

void
expectSameLedgers(const std::vector<Ledger> &a,
                  const std::vector<Ledger> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        // Order-independent comparison of the per-branch tables.
        std::map<uint64_t, BranchTally> ta(a[i].table().begin(),
                                           a[i].table().end());
        std::map<uint64_t, BranchTally> tb(b[i].table().begin(),
                                           b[i].table().end());
        ASSERT_EQ(ta.size(), tb.size()) << "ledger " << i;
        for (const auto &[pc, tally] : ta) {
            const BranchTally &other = tb.at(pc);
            EXPECT_EQ(tally.execs, other.execs) << pc;
            EXPECT_EQ(tally.correct, other.correct) << pc;
            EXPECT_EQ(tally.taken, other.taken) << pc;
        }
    }
}

TEST(RunAllParallel, MatchesSerialRunAllAcrossThreadCounts)
{
    trace::Trace trace = testTrace();

    auto serial_zoo = predictorZoo();
    std::vector<Ledger> serial_ledgers;
    auto serial =
        runAll(trace, raw(serial_zoo), &serial_ledgers);

    for (unsigned threads : {1u, 2u, 8u}) {
        ThreadPool pool(threads);
        auto parallel_zoo = predictorZoo();
        std::vector<Ledger> parallel_ledgers;
        auto parallel = runAllParallel(trace, raw(parallel_zoo),
                                       &parallel_ledgers, &pool);
        expectSameResults(serial, parallel);
        expectSameLedgers(serial_ledgers, parallel_ledgers);
    }
}

TEST(RunAllParallel, UsesGlobalPoolByDefault)
{
    trace::Trace trace = testTrace();
    auto zoo_a = predictorZoo();
    auto zoo_b = predictorZoo();
    auto serial = runAll(trace, raw(zoo_a));
    auto parallel = runAllParallel(trace, raw(zoo_b));
    expectSameResults(serial, parallel);
}

TEST(BatchedDriver, TwoLevelBatchMatchesScalarVirtualLoop)
{
    trace::Trace trace = testTrace();

    // Scalar reference: the classic two-virtual-calls-per-branch loop.
    predictor::TwoLevel scalar(predictor::TwoLevelConfig::gshare(12));
    Ledger scalar_ledger;
    uint64_t scalar_correct = 0;
    uint64_t scalar_dynamic = 0;
    for (const auto &rec : trace.records()) {
        if (!rec.isConditional()) {
            scalar.observe(rec);
            continue;
        }
        bool prediction = scalar.predict(rec);
        scalar.update(rec, rec.taken);
        bool correct = prediction == rec.taken;
        ++scalar_dynamic;
        scalar_correct += correct ? 1 : 0;
        scalar_ledger.record(rec.pc, rec.taken, correct);
    }

    // sim::run drives the devirtualized batch override.
    predictor::TwoLevel batched(predictor::TwoLevelConfig::gshare(12));
    Ledger batched_ledger;
    RunResult result = run(trace, batched, &batched_ledger);

    EXPECT_EQ(result.dynamicBranches, scalar_dynamic);
    EXPECT_EQ(result.correct, scalar_correct);
    std::vector<Ledger> a{scalar_ledger};
    std::vector<Ledger> b{batched_ledger};
    expectSameLedgers(a, b);
}

TEST(ParallelOracle, SelectionIsIdenticalAcrossThreadCounts)
{
    trace::Trace trace = workload::makeBenchmarkTrace("go", 20000, 0);
    core::OracleConfig config;
    config.historyDepth = 12;
    config.candidatePool = 6;
    config.mineConditionals = 20000;

    setGlobalPoolThreads(1);
    core::SelectiveOracle reference(trace, config);

    for (unsigned threads : {2u, 8u}) {
        setGlobalPoolThreads(threads);
        core::SelectiveOracle oracle(trace, config);
        for (unsigned size = 1; size <= 3; ++size) {
            EXPECT_DOUBLE_EQ(oracle.accuracyPercent(size),
                             reference.accuracyPercent(size))
                << "threads=" << threads << " size=" << size;
        }
        for (const auto &[pc, sel] : reference.branches()) {
            const core::BranchSelection *other = oracle.branch(pc);
            ASSERT_NE(other, nullptr);
            EXPECT_EQ(sel.correct, other->correct) << pc;
            for (unsigned s = 0; s < 3; ++s) {
                ASSERT_EQ(sel.chosen[s].size(), other->chosen[s].size());
                for (size_t t = 0; t < sel.chosen[s].size(); ++t)
                    EXPECT_TRUE(sel.chosen[s][t] == other->chosen[s][t]);
            }
        }
    }
    setGlobalPoolThreads(0);
}

} // namespace
} // namespace copra::sim
