/**
 * @file
 * copra_report's library core: the Markdown regression diff against a
 * checked-in golden (two canned manifests in tests/data/), and the
 * registry-doc renderer that metrics_doc_drift gates on.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "obs/instruments.hpp"
#include "obs/manifest.hpp"
#include "obs/report.hpp"

#ifndef COPRA_REPO_ROOT
#error "COPRA_REPO_ROOT must point at the source tree"
#endif

namespace copra::obs {
namespace {

std::string
slurp(const std::string &rel)
{
    std::ifstream in(std::string(COPRA_REPO_ROOT) + "/" + rel);
    EXPECT_TRUE(in.good()) << "cannot open " << rel;
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

TEST(ObsReportTest, DiffMatchesGolden)
{
    Json before = Json::parse(slurp("tests/data/manifest_before.json"));
    Json after = Json::parse(slurp("tests/data/manifest_after.json"));
    std::string report = diffManifests(before, after);
    EXPECT_EQ(report, slurp("tests/data/report_golden.md"))
        << "regenerate with: build/tools/copra_report diff "
           "tests/data/manifest_before.json "
           "tests/data/manifest_after.json "
           "> tests/data/report_golden.md";
}

TEST(ObsReportTest, DiffThresholdControlsNotables)
{
    Json before = Json::parse(slurp("tests/data/manifest_before.json"));
    Json after = Json::parse(slurp("tests/data/manifest_after.json"));
    DiffOptions strict;
    strict.threshold = 0.50; // only the 100% pool moves qualify
    std::string report = diffManifests(before, after, strict);
    EXPECT_NE(report.find("pool.task.queued`: +100.00%"),
              std::string::npos);
    EXPECT_EQ(report.find("`sim.run.mispredicts`: -6.25%"),
              std::string::npos);
}

TEST(ObsReportTest, DiffRejectsSchemaMismatch)
{
    Json before = Json::parse(slurp("tests/data/manifest_before.json"));
    Json wrong = Json::parse(
        "{\"schema_version\": 999, \"instruments\": []}");
    EXPECT_THROW(diffManifests(before, wrong), std::runtime_error);
    Json not_manifest = Json::parse("{\"foo\": 1}");
    EXPECT_THROW(diffManifests(not_manifest, before),
                 std::runtime_error);
}

TEST(ObsReportTest, RegistryDocListsEveryInstrument)
{
    std::string doc = renderRegistryDoc();
    for (const InstrumentDesc &desc : instrumentCatalog()) {
        EXPECT_NE(doc.find("`" + std::string(desc.key) + "`"),
                  std::string::npos)
            << "instrument " << desc.key << " missing from doc";
    }
    EXPECT_NE(doc.find("metrics_doc_drift"), std::string::npos);
}

TEST(ObsReportTest, CheckedInMetricsDocIsCurrent)
{
    // Same comparison the metrics_doc_drift ctest gate makes, kept
    // here too so `ctest -R obs` alone catches a stale doc.
    EXPECT_EQ(renderRegistryDoc(), slurp("docs/METRICS.md"))
        << "regenerate with: build/tools/copra_report --doc-registry "
           "> docs/METRICS.md";
}

} // namespace
} // namespace copra::obs
