/**
 * @file
 * Unit tests for the fixed-size task pool behind the parallel
 * experiment engine.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "util/thread_pool.hpp"

namespace copra {
namespace {

TEST(ThreadPool, RunsSubmittedTasksAndDeliversResults)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4u);

    std::vector<std::future<int>> futures;
    for (int i = 0; i < 32; ++i)
        futures.push_back(pool.submit([i]() { return i * i; }));
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(futures[static_cast<size_t>(i)].get(), i * i);
}

TEST(ThreadPool, SingleWorkerPoolStillCompletesEverything)
{
    ThreadPool pool(1);
    std::atomic<int> counter{0};
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 16; ++i)
        futures.push_back(pool.submit([&counter]() { ++counter; }));
    for (auto &future : futures)
        future.get();
    EXPECT_EQ(counter.load(), 16);
}

TEST(ThreadPool, SubmitPropagatesExceptions)
{
    ThreadPool pool(2);
    auto future = pool.submit(
        []() -> int { throw std::runtime_error("boom"); });
    EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, DestructorDrainsQueuedTasks)
{
    std::atomic<int> counter{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 64; ++i)
            pool.submit([&counter]() { ++counter; });
    }
    EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPool, OnWorkerThreadDistinguishesWorkers)
{
    EXPECT_FALSE(ThreadPool::onWorkerThread());
    ThreadPool pool(2);
    auto future =
        pool.submit([]() { return ThreadPool::onWorkerThread(); });
    EXPECT_TRUE(future.get());
    EXPECT_FALSE(ThreadPool::onWorkerThread());
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    const size_t n = 1000;
    std::vector<std::atomic<int>> hits(n);
    parallelFor(pool, n, [&hits](size_t i) { ++hits[i]; });
    for (size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ParallelFor, HandlesEmptyAndSingleIteration)
{
    ThreadPool pool(3);
    parallelFor(pool, 0, [](size_t) { FAIL() << "no iterations"; });

    int calls = 0;
    parallelFor(pool, 1, [&calls](size_t i) {
        EXPECT_EQ(i, 0u);
        ++calls;
    });
    EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, RethrowsIterationExceptions)
{
    ThreadPool pool(4);
    EXPECT_THROW(parallelFor(pool, 100,
                             [](size_t i) {
                                 if (i == 57)
                                     throw std::runtime_error("57");
                             }),
                 std::runtime_error);
}

TEST(ParallelFor, NestedInvocationRunsInlineWithoutDeadlock)
{
    ThreadPool pool(2);
    std::atomic<int> inner_total{0};
    // Saturate the pool with tasks that each run a nested parallelFor;
    // without the worker-thread fallback this deadlocks.
    parallelFor(pool, 8, [&](size_t) {
        parallelFor(pool, 8, [&](size_t) { ++inner_total; });
    });
    EXPECT_EQ(inner_total.load(), 64);
}

TEST(ParallelForDeath, RunsInlineInForkedChild)
{
    // Death tests fork; the child inherits the pool object but none of
    // its workers, so parallelFor must fall back to the inline loop
    // instead of waiting on tasks nobody will run. Without that
    // fallback this test hangs rather than exiting.
    ThreadPool pool(4);
    EXPECT_EXIT(
        {
            int sum = 0;
            parallelFor(pool, 8, [&sum](size_t i) {
                sum += static_cast<int>(i);
            });
            _exit(sum == 28 ? 0 : 1);
        },
        ::testing::ExitedWithCode(0), "");
}

TEST(ThreadPool, OversubscribedPoolCoversEveryIndexOnce)
{
    // Far more workers than cores: the static sharding must stay
    // correct regardless of how the OS schedules them.
    unsigned hw = std::thread::hardware_concurrency();
    ThreadPool pool(4 * (hw ? hw : 1));
    const size_t n = 2000;
    std::vector<std::atomic<int>> hits(n);
    parallelFor(pool, n, [&hits](size_t i) { ++hits[i]; });
    for (size_t i = 0; i < n; ++i)
        ASSERT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ParallelFor, PoolSurvivesThrowingTasksAndStaysUsable)
{
    ThreadPool pool(4);
    for (int round = 0; round < 3; ++round)
        EXPECT_THROW(parallelFor(pool, 64,
                                 [](size_t i) {
                                     if (i % 7 == 0)
                                         throw std::runtime_error("x");
                                 }),
                     std::runtime_error);
    std::atomic<int> counter{0};
    parallelFor(pool, 64, [&counter](size_t) { ++counter; });
    EXPECT_EQ(counter.load(), 64);
}

/** Scoped save/restore of COPRA_THREADS around the parsing tests. */
class CopraThreadsEnv : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        const char *old = std::getenv("COPRA_THREADS");
        had_ = old != nullptr;
        saved_ = had_ ? old : "";
    }

    void
    TearDown() override
    {
        if (had_)
            ::setenv("COPRA_THREADS", saved_.c_str(), 1);
        else
            ::unsetenv("COPRA_THREADS");
    }

  private:
    bool had_ = false;
    std::string saved_;
};

TEST_F(CopraThreadsEnv, PositiveValuesAreHonoured)
{
    ::setenv("COPRA_THREADS", "3", 1);
    EXPECT_EQ(defaultThreadCount(), 3u);
    // Oversubscription is allowed: sharding never depends on the
    // worker count matching the hardware.
    ::setenv("COPRA_THREADS", "64", 1);
    EXPECT_EQ(defaultThreadCount(), 64u);
}

TEST_F(CopraThreadsEnv, ZeroNegativeAndGarbageFallBackToHardware)
{
    unsigned hw = std::thread::hardware_concurrency();
    unsigned fallback = hw ? hw : 1;
    for (const char *bad : {"0", "-2", "abc", "4x", ""}) {
        ::setenv("COPRA_THREADS", bad, 1);
        EXPECT_EQ(defaultThreadCount(), fallback) << "value '" << bad
                                                  << "'";
    }
    ::unsetenv("COPRA_THREADS");
    EXPECT_EQ(defaultThreadCount(), fallback);
}

TEST(GlobalPool, ResizableAndUsable)
{
    setGlobalPoolThreads(2);
    EXPECT_EQ(globalPool().size(), 2u);
    std::atomic<int> counter{0};
    parallelFor(globalPool(), 10, [&counter](size_t) { ++counter; });
    EXPECT_EQ(counter.load(), 10);
    setGlobalPoolThreads(0); // back to the default size
    EXPECT_EQ(globalPool().size(), defaultThreadCount());
}

} // namespace
} // namespace copra
