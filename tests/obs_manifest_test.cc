/**
 * @file
 * Manifest round-trip and schema conformance: a manifest built from a
 * live snapshot must dump to JSON, parse back identically, and satisfy
 * the structural rules of docs/schema/run_manifest.schema.json (the
 * schema file itself is read and cross-checked, so manifest.cc and the
 * schema cannot silently drift apart). Also covers the JSON
 * writer/parser pair on its own.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "obs/instruments.hpp"
#include "obs/json.hpp"
#include "obs/manifest.hpp"
#include "obs/registry.hpp"

#ifndef COPRA_REPO_ROOT
#error "COPRA_REPO_ROOT must point at the source tree"
#endif

namespace copra::obs {
namespace {

class ObsManifestTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        Registry::instance().reset();
        setEnabled(true);
    }

    void
    TearDown() override
    {
        setEnabled(false);
        Registry::instance().reset();
    }
};

Json
loadSchema()
{
    std::ifstream in(std::string(COPRA_REPO_ROOT) +
                     "/docs/schema/run_manifest.schema.json");
    EXPECT_TRUE(in.good()) << "schema file missing";
    std::ostringstream slurp;
    slurp << in.rdbuf();
    return Json::parse(slurp.str());
}

Json
sampleManifest()
{
    count(ids().simRunBranches, 123456);
    count(ids().simRunMispredicts, 789);
    gaugeMax(ids().poolWorkerCount, 4);
    observe(ids().benchSuiteWallSeconds, 1.25);
    RunInfo info;
    info.tool = "obs_manifest_test";
    info.args = "--branches 1000";
    info.seed = 42;
    info.threads = 4;
    return buildManifest(info, Registry::instance().snapshot());
}

TEST_F(ObsManifestTest, JsonRoundTripsThroughDumpAndParse)
{
    Json manifest = sampleManifest();
    std::string once = manifest.dump(2);
    std::string twice = Json::parse(once).dump(2);
    EXPECT_EQ(once, twice);
}

TEST_F(ObsManifestTest, ManifestCarriesRequiredSchemaFields)
{
    Json schema = loadSchema();
    Json manifest = sampleManifest();

    // Every field the schema declares required must be present...
    for (const Json &req : schema.at("required").items()) {
        EXPECT_NE(manifest.find(req.asString()), nullptr)
            << "manifest missing required field " << req.asString();
    }
    // ...and the manifest must not invent fields the schema does not
    // know (additionalProperties: false).
    std::set<std::string> known;
    for (const auto &[name, value] : schema.at("properties").entries())
        known.insert(name);
    for (const auto &[name, value] : manifest.entries())
        EXPECT_TRUE(known.count(name))
            << "manifest field " << name << " absent from schema";

    EXPECT_EQ(static_cast<int>(
                  manifest.at("schema_version").asNumber()),
              kManifestSchemaVersion);
    EXPECT_EQ(manifest.at("tool").asString(), "obs_manifest_test");
    EXPECT_EQ(manifest.at("seed").asNumber(), 42.0);
    EXPECT_EQ(manifest.at("threads").asNumber(), 4.0);
}

TEST_F(ObsManifestTest, InstrumentEntriesMatchSchemaShape)
{
    Json schema = loadSchema();
    const Json &item_schema =
        schema.at("properties").at("instruments").at("items");
    std::set<std::string> known;
    for (const auto &[name, value] :
         item_schema.at("properties").entries())
        known.insert(name);
    std::set<std::string> types;
    for (const Json &t :
         item_schema.at("properties").at("type").at("enum").items())
        types.insert(t.asString());

    Json manifest = sampleManifest();
    size_t entries = 0;
    for (const Json &entry : manifest.at("instruments").items()) {
        ++entries;
        for (const auto &[name, value] : entry.entries())
            EXPECT_TRUE(known.count(name))
                << "instrument field " << name
                << " absent from schema";
        EXPECT_TRUE(types.count(entry.at("type").asString()));
        if (entry.at("type").asString() == "histogram") {
            EXPECT_NE(entry.find("count"), nullptr);
            EXPECT_NE(entry.find("sum"), nullptr);
            EXPECT_EQ(entry.find("value"), nullptr);
        } else {
            EXPECT_NE(entry.find("value"), nullptr);
            EXPECT_EQ(entry.find("count"), nullptr);
        }
    }
    // One entry per cataloged instrument, in catalog order.
    EXPECT_EQ(entries, instrumentCatalog().size());
}

TEST_F(ObsManifestTest, ValuesSurviveTheRoundTrip)
{
    Json manifest = sampleManifest();
    Json reparsed = Json::parse(manifest.dump(2));
    bool found = false;
    for (const Json &entry : reparsed.at("instruments").items()) {
        if (entry.at("key").asString() != "sim.run.branches")
            continue;
        found = true;
        EXPECT_EQ(entry.at("value").asNumber(), 123456.0);
    }
    EXPECT_TRUE(found);
}

TEST_F(ObsManifestTest, WriteAndLoadManifestFile)
{
    count(ids().traceCacheHit, 7);
    RunInfo info;
    info.tool = "obs_manifest_test";
    info.seed = 1;
    info.threads = 2;
    std::string path = ::testing::TempDir() + "obs_manifest_test.json";
    ASSERT_TRUE(writeManifest(path, info));
    Json loaded = loadManifest(path);
    EXPECT_EQ(loaded.at("tool").asString(), "obs_manifest_test");
}

TEST_F(ObsManifestTest, LoadRejectsNonManifests)
{
    std::string path = ::testing::TempDir() + "obs_not_manifest.json";
    {
        std::ofstream out(path, std::ios::trunc);
        out << "{\"hello\": 1}";
    }
    EXPECT_THROW(loadManifest(path), std::runtime_error);
    EXPECT_THROW(loadManifest(path + ".does-not-exist"),
                 std::runtime_error);
}

TEST_F(ObsManifestTest, ParserRejectsMalformedJson)
{
    EXPECT_THROW(Json::parse("{\"a\": }"), std::runtime_error);
    EXPECT_THROW(Json::parse("[1, 2"), std::runtime_error);
    EXPECT_THROW(Json::parse(""), std::runtime_error);
    EXPECT_THROW(Json::parse("{} trailing"), std::runtime_error);
}

} // namespace
} // namespace copra::obs
