/**
 * @file
 * Unit tests for histograms, weighted percentiles, and table formatting.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "util/histogram.hpp"
#include "util/table.hpp"

namespace copra {
namespace {

TEST(Histogram, BinsValuesByPosition)
{
    Histogram h(0.0, 10.0, 10);
    h.add(0.5);
    h.add(5.5);
    h.add(9.5);
    EXPECT_EQ(h.count(0), 1u);
    EXPECT_EQ(h.count(5), 1u);
    EXPECT_EQ(h.count(9), 1u);
    EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, ClampsOutOfRangeToEdgeBins)
{
    Histogram h(0.0, 1.0, 4);
    h.add(-5.0);
    h.add(7.0);
    EXPECT_EQ(h.count(0), 1u);
    EXPECT_EQ(h.count(3), 1u);
}

TEST(Histogram, WeightsAccumulate)
{
    Histogram h(0.0, 1.0, 2);
    h.add(0.25, 10);
    h.add(0.75, 30);
    EXPECT_EQ(h.count(0), 10u);
    EXPECT_EQ(h.count(1), 30u);
    EXPECT_DOUBLE_EQ(h.fraction(1), 0.75);
}

TEST(Histogram, BinCentersAreMidpoints)
{
    Histogram h(0.0, 10.0, 5);
    EXPECT_DOUBLE_EQ(h.binCenter(0), 1.0);
    EXPECT_DOUBLE_EQ(h.binCenter(4), 9.0);
}

TEST(Histogram, ClearResets)
{
    Histogram h(0.0, 1.0, 2);
    h.add(0.1);
    h.clear();
    EXPECT_EQ(h.total(), 0u);
    EXPECT_DOUBLE_EQ(h.fraction(0), 0.0);
}

TEST(WeightedPercentiles, UnweightedMedian)
{
    WeightedPercentiles wp;
    for (int v : {1, 2, 3, 4, 5})
        wp.add(v, 1);
    EXPECT_DOUBLE_EQ(wp.percentile(50), 3.0);
    EXPECT_DOUBLE_EQ(wp.percentile(0), 1.0);
    EXPECT_DOUBLE_EQ(wp.percentile(100), 5.0);
}

TEST(WeightedPercentiles, WeightShiftsPercentiles)
{
    WeightedPercentiles wp;
    wp.add(0.0, 90);
    wp.add(1.0, 10);
    EXPECT_DOUBLE_EQ(wp.percentile(50), 0.0);
    EXPECT_DOUBLE_EQ(wp.percentile(89), 0.0);
    EXPECT_DOUBLE_EQ(wp.percentile(95), 1.0);
}

TEST(WeightedPercentiles, ZeroWeightIgnored)
{
    WeightedPercentiles wp;
    wp.add(5.0, 0);
    wp.add(1.0, 1);
    EXPECT_EQ(wp.totalWeight(), 1u);
    EXPECT_DOUBLE_EQ(wp.percentile(100), 1.0);
}

TEST(WeightedPercentiles, CurveIsMonotoneNonDecreasing)
{
    WeightedPercentiles wp;
    wp.add(-7.0, 5);
    wp.add(0.0, 80);
    wp.add(10.4, 15);
    auto curve = wp.curve(5.0);
    ASSERT_EQ(curve.size(), 21u);
    for (size_t i = 1; i < curve.size(); ++i)
        EXPECT_GE(curve[i].second, curve[i - 1].second);
    EXPECT_DOUBLE_EQ(curve.front().second, -7.0);
    EXPECT_DOUBLE_EQ(curve.back().second, 10.4);
}

TEST(Table, AlignsColumns)
{
    Table t({"a", "long-header"});
    t.row().cell("x").cell(uint64_t{7});
    std::ostringstream os;
    t.print(os);
    std::string out = os.str();
    EXPECT_NE(out.find("a"), std::string::npos);
    EXPECT_NE(out.find("long-header"), std::string::npos);
    EXPECT_NE(out.find("x"), std::string::npos);
    EXPECT_NE(out.find("7"), std::string::npos);
    // Header separator line present.
    EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Table, FixedPrecisionCells)
{
    Table t({"v"});
    t.row().cell(3.14159, 2);
    std::ostringstream os;
    t.print(os);
    EXPECT_NE(os.str().find("3.14"), std::string::npos);
    EXPECT_EQ(os.str().find("3.142"), std::string::npos);
}

TEST(Table, CsvEscapesSpecialCharacters)
{
    Table t({"name", "note"});
    t.row().cell("plain").cell("has,comma");
    t.row().cell("q\"uote").cell("line\nbreak");
    std::ostringstream os;
    t.printCsv(os);
    std::string out = os.str();
    EXPECT_NE(out.find("\"has,comma\""), std::string::npos);
    EXPECT_NE(out.find("\"q\"\"uote\""), std::string::npos);
}

TEST(Table, RowAndColumnCounts)
{
    Table t({"a", "b"});
    EXPECT_EQ(t.columns(), 2u);
    EXPECT_EQ(t.rows(), 0u);
    t.row().cell("1").cell("2");
    EXPECT_EQ(t.rows(), 1u);
}

TEST(FormatHelpers, FixedAndPercent)
{
    EXPECT_EQ(formatFixed(1.005, 2), "1.00");
    EXPECT_EQ(formatFixed(2.5, 0), "2");
    EXPECT_EQ(formatPercent(1, 2), "50.00");
    EXPECT_EQ(formatPercent(0, 0), "n/a");
    EXPECT_EQ(formatPercent(999, 1000, 1), "99.9");
}

} // namespace
} // namespace copra
