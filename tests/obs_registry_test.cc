/**
 * @file
 * The observability registry under concurrency: counter sums must be
 * exact across racing threads, histogram merging must be associative
 * and commutative (the determinism argument of DESIGN.md §11), and the
 * RAII phase timer must feed both its histograms and its caller sink.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <thread>
#include <vector>

#include "obs/instruments.hpp"
#include "obs/registry.hpp"

namespace copra::obs {
namespace {

class ObsRegistryTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        Registry::instance().reset();
        setEnabled(true);
    }

    void
    TearDown() override
    {
        setEnabled(false);
        Registry::instance().reset();
    }
};

uint64_t
scalarOf(InstrumentId id)
{
    Snapshot snap = Registry::instance().snapshot();
    return snap.values.at(id).scalar;
}

TEST_F(ObsRegistryTest, CatalogAndIdsAgree)
{
    const std::vector<InstrumentDesc> &catalog = instrumentCatalog();
    ASSERT_FALSE(catalog.empty());
    EXPECT_STREQ(catalog[ids().simRunBranches].key,
                 "sim.run.branches");
    EXPECT_STREQ(catalog[ids().poolTaskQueued].key, "pool.task.queued");
    EXPECT_STREQ(catalog[ids().checkDiffMismatches].key,
                 "check.diff.mismatches");
    // Keys are unique — a duplicate would make two ids share a row.
    std::set<std::string> keys;
    for (const InstrumentDesc &desc : catalog)
        EXPECT_TRUE(keys.insert(desc.key).second)
            << "duplicate instrument key " << desc.key;
}

TEST_F(ObsRegistryTest, DisabledRecordingIsDropped)
{
    setEnabled(false);
    count(ids().simRunBranches, 1000);
    observe(ids().benchSuiteWallSeconds, 1.0);
    setEnabled(true);
    EXPECT_EQ(scalarOf(ids().simRunBranches), 0u);
}

TEST_F(ObsRegistryTest, ConcurrentCountersSumExactly)
{
    constexpr int kThreads = 8;
    constexpr uint64_t kPerThread = 20000;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([] {
            for (uint64_t i = 0; i < kPerThread; ++i)
                count(ids().simRunBranches);
            // This thread's sink merges into retired totals here.
        });
    }
    for (std::thread &t : threads)
        t.join();
    EXPECT_EQ(scalarOf(ids().simRunBranches), kThreads * kPerThread);
}

TEST_F(ObsRegistryTest, ConcurrentGaugeTakesMax)
{
    constexpr int kThreads = 6;
    std::vector<std::thread> threads;
    for (int t = 1; t <= kThreads; ++t) {
        threads.emplace_back([t] {
            gaugeMax(ids().poolQueueDepthHighWater,
                     static_cast<uint64_t>(t * 10));
        });
    }
    for (std::thread &t : threads)
        t.join();
    EXPECT_EQ(scalarOf(ids().poolQueueDepthHighWater), 60u);
}

TEST_F(ObsRegistryTest, SnapshotSeesLiveSinks)
{
    // No thread exit before the snapshot: values must still be folded.
    count(ids().traceCacheHit, 3);
    Snapshot snap = Registry::instance().snapshot();
    EXPECT_EQ(snap.values.at(ids().traceCacheHit).scalar, 3u);
    Registry::instance().retireCurrentThread();
    EXPECT_EQ(scalarOf(ids().traceCacheHit), 3u);
}

TEST_F(ObsRegistryTest, HistogramMergeIsAssociativeAndCommutative)
{
    InstrumentDesc desc;
    desc.key = "test.hist";
    desc.kind = Kind::Histogram;
    desc.unit = "units";
    desc.description = "test";
    desc.module = "tests";
    desc.lo = 0.0;
    desc.hi = 10.0;
    desc.bins = 10;

    HistogramValue a(desc), b(desc), c(desc);
    for (double v : {0.5, 1.5, 9.5})
        a.observe(v);
    for (double v : {2.5, 3.5})
        b.observe(v);
    c.observe(7.0);

    // (a + b) + c
    HistogramValue left(desc);
    left.merge(a);
    left.merge(b);
    left.merge(c);
    // c + (b + a) — different order and grouping.
    HistogramValue bc(desc);
    bc.merge(c);
    bc.merge(b);
    HistogramValue right(desc);
    right.merge(bc);
    right.merge(a);

    EXPECT_EQ(left.count, right.count);
    EXPECT_DOUBLE_EQ(left.sum, right.sum);
    EXPECT_DOUBLE_EQ(left.min, right.min);
    EXPECT_DOUBLE_EQ(left.max, right.max);
    EXPECT_EQ(left.count, 6u);
    EXPECT_DOUBLE_EQ(left.min, 0.5);
    EXPECT_DOUBLE_EQ(left.max, 9.5);
}

TEST_F(ObsRegistryTest, HistogramObserveTracksExtremes)
{
    observe(ids().benchSuiteWallSeconds, 2.0);
    observe(ids().benchSuiteWallSeconds, 0.25);
    observe(ids().benchSuiteWallSeconds, 1.0);
    Snapshot snap = Registry::instance().snapshot();
    const InstrumentValue &v =
        snap.values.at(ids().benchSuiteWallSeconds);
    EXPECT_EQ(v.count, 3u);
    EXPECT_DOUBLE_EQ(v.sum, 3.25);
    EXPECT_DOUBLE_EQ(v.min, 0.25);
    EXPECT_DOUBLE_EQ(v.max, 2.0);
}

TEST_F(ObsRegistryTest, PhaseTimerFeedsHistogramAndSink)
{
    double sink = 0.0;
    {
        PhaseTimer timer(ids().simPhaseTraceSeconds,
                         ids().simPhaseTraceCpuSeconds, &sink);
        // A little real work so the elapsed time is non-negative and
        // the CPU clock advances measurably on most schedulers.
        volatile uint64_t x = 0;
        for (int i = 0; i < 100000; ++i)
            x += static_cast<uint64_t>(i);
    }
    EXPECT_GE(sink, 0.0);
    Snapshot snap = Registry::instance().snapshot();
    EXPECT_EQ(snap.values.at(ids().simPhaseTraceSeconds).count, 1u);
    EXPECT_EQ(snap.values.at(ids().simPhaseTraceCpuSeconds).count, 1u);
    EXPECT_DOUBLE_EQ(snap.values.at(ids().simPhaseTraceSeconds).sum,
                     sink);
}

TEST_F(ObsRegistryTest, PhaseTimerSinkWorksWhenTelemetryDisabled)
{
    setEnabled(false);
    double sink = -1.0;
    {
        PhaseTimer timer(ids().simPhaseTraceSeconds,
                         ids().simPhaseTraceCpuSeconds, &sink);
        volatile uint64_t x = 0;
        for (int i = 0; i < 100000; ++i)
            x += static_cast<uint64_t>(i);
    }
    // The caller-owned accumulator must still be fed (the bench
    // timing= line does not depend on --metrics-out).
    EXPECT_GT(sink, -1.0);
    setEnabled(true);
    EXPECT_EQ(Registry::instance()
                  .snapshot()
                  .values.at(ids().simPhaseTraceSeconds)
                  .count,
              0u);
}

TEST_F(ObsRegistryTest, ResetZeroesEverything)
{
    count(ids().simRunBranches, 5);
    observe(ids().benchSuiteWallSeconds, 1.0);
    Registry::instance().reset();
    Snapshot snap = Registry::instance().snapshot();
    EXPECT_EQ(snap.values.at(ids().simRunBranches).scalar, 0u);
    EXPECT_EQ(snap.values.at(ids().benchSuiteWallSeconds).count, 0u);
}

} // namespace
} // namespace copra::obs
