#!/bin/sh
# Proves the thread-safety capability layer fails the build *readably*
# when lock discipline is violated: compiles tests/thread_safety_break.cc
# with -Wthread-safety -Werror=thread-safety, requires a nonzero exit
# AND a "requires holding mutex" clause in the diagnostics. The mirror
# of contracts_negative.cmake for the concurrency axis (DESIGN.md §10).
#
# Usage: thread_safety_negative.sh <compiler> <repo-root>
#
# -Wthread-safety is a Clang analysis; under a non-Clang compiler the
# test exits 77, which ctest maps to SKIPPED via SKIP_RETURN_CODE (the
# CI clang job is the hard gate).

set -u

CXX="$1"
SRC="$2"

if ! "$CXX" -x c++ -std=c++20 -fsyntax-only -Wthread-safety \
        /dev/null 2>/dev/null; then
    echo "skipping: $CXX does not support -Wthread-safety (not Clang)"
    exit 77
fi

diag=$("$CXX" -std=c++20 -fsyntax-only -Wthread-safety \
    -Werror=thread-safety "-I$SRC/src" \
    "$SRC/tests/thread_safety_break.cc" 2>&1)
rc=$?

if [ "$rc" -eq 0 ]; then
    echo "thread_safety_break.cc compiled cleanly; the capability"
    echo "annotations no longer reject unguarded access"
    exit 1
fi

case "$diag" in
  *"requires holding mutex"*) ;;
  *)
    echo "compilation failed but without the readable lock-discipline"
    echo "message; diagnostics were:"
    echo "$diag"
    exit 1
    ;;
esac

# The correctly guarded control must not be diagnosed: a checker that
# rejects the idiom wholesale proves nothing about the violations.
case "$diag" in
  *bumpGuarded*)
    echo "the correctly guarded control function was diagnosed too;"
    echo "diagnostics were:"
    echo "$diag"
    exit 1
    ;;
esac

echo "lock-discipline violations rejected with readable diagnostics," \
     "as designed"
exit 0
