/**
 * @file
 * Unit tests for the per-address predictability classification engine
 * (paper §4).
 */

#include <gtest/gtest.h>

#include "core/pa_class.hpp"
#include "util/rng.hpp"
#include "workload/patterns.hpp"

namespace copra::core {
namespace {

using trace::BranchKind;

TEST(PaClassName, AllNamesDefined)
{
    EXPECT_STREQ(paClassName(PaClass::IdealStatic), "ideal-static");
    EXPECT_STREQ(paClassName(PaClass::Loop), "loop");
    EXPECT_STREQ(paClassName(PaClass::Repeating), "repeating");
    EXPECT_STREQ(paClassName(PaClass::NonRepeating), "non-repeating");
}

TEST(PaClassifier, LoopBranchIsLoopClass)
{
    auto trace = workload::loopTrace(0x100, 9, 300);
    PaClassifier classifier(trace);
    const PaBranchResult *res = classifier.branch(0x100);
    ASSERT_NE(res, nullptr);
    EXPECT_EQ(res->cls, PaClass::Loop);
    // The loop predictor is near perfect; the static predictor caps at
    // the body fraction 8/9.
    EXPECT_GT(res->loopCorrect, res->staticCorrect);
}

TEST(PaClassifier, WhileBranchIsLoopClass)
{
    auto trace = workload::whileTrace(0x100, 7, 300);
    PaClassifier classifier(trace);
    EXPECT_EQ(classifier.branch(0x100)->cls, PaClass::Loop);
}

TEST(PaClassifier, BlockPatternIsRepeatingClass)
{
    auto trace = workload::blockPatternTrace(0x100, 40, 37, 80);
    PaClassifier classifier(trace);
    const PaBranchResult *res = classifier.branch(0x100);
    // Block patterns defeat the loop predictor (two long runs) and the
    // 12-bit IF-PAs history (period 77 >> 12), but the block predictor
    // nails them.
    EXPECT_EQ(res->cls, PaClass::Repeating);
    EXPECT_GT(res->blockCorrect, res->ifPasCorrect);
}

TEST(PaClassifier, PrimePeriodPatternIsRepeatingClass)
{
    // A period-29 irregular pattern: fixed-k (k=29) catches it; the loop
    // and block predictors see irregular runs; IF-PAs h=12 sees only a
    // 12-outcome window of a 29-period signal (learnable, but fixed-k is
    // exact). Use a pattern whose 12-bit windows are ambiguous: embed
    // two identical 12-windows with different successors.
    std::vector<bool> pattern(29, false);
    // Two copies of the same 13-bit prefix with different next bits.
    for (int i = 0; i < 13; ++i) {
        pattern[static_cast<size_t>(i)] = (i % 3) == 0;
        pattern[static_cast<size_t>(i + 14)] = (i % 3) == 0;
    }
    pattern[13] = true;
    pattern[27] = false;
    pattern[28] = true;
    auto trace = workload::periodicTrace(0x100, pattern, 200);
    PaClassifier classifier(trace);
    const PaBranchResult *res = classifier.branch(0x100);
    EXPECT_EQ(res->cls, PaClass::Repeating);
    EXPECT_EQ(res->bestFixedK, 29u);
}

TEST(PaClassifier, DeterministicRecurrenceIsNonRepeating)
{
    // A degree-6 LFSR bit stream has period 63 — beyond fixed-k's reach
    // (k <= 32) and far beyond the loop/block predictors' single-run
    // model — but each outcome is a deterministic function of the
    // previous six, so IF-PAs (h = 12) learns it exactly. This is the
    // paper's non-repeating-pattern class (§4.1.3).
    trace::Trace t("lfsr6");
    uint32_t lfsr = 0b100101;
    for (int i = 0; i < 8000; ++i) {
        bool bit = ((lfsr >> 0) ^ (lfsr >> 1)) & 1u; // taps 6,5
        lfsr = (lfsr >> 1) | (static_cast<uint32_t>(bit) << 5);
        t.append({0x100, 0x180, BranchKind::Conditional, bit});
    }
    PaClassifier classifier(t);
    const PaBranchResult *res = classifier.branch(0x100);
    ASSERT_NE(res, nullptr);
    EXPECT_GT(100.0 * res->ifPasCorrect / res->execs, 98.0);
    EXPECT_EQ(res->cls, PaClass::NonRepeating);
}

TEST(PaClassifier, MarkovNoiseIsDynamicallyPredictable)
{
    // A sticky Markov branch is best predicted by "same as last
    // outcome". Both fixed-k (k = 1) and IF-PAs capture that, so the
    // branch lands in a dynamic pattern class — never static or loop.
    trace::Trace t("markov");
    Rng rng(21);
    bool state = false;
    for (int i = 0; i < 8000; ++i) {
        state = state ? rng.bernoulli(0.85) : rng.bernoulli(0.15);
        t.append({0x100, 0x180, BranchKind::Conditional, state});
    }
    PaClassifier classifier(t);
    const PaBranchResult *res = classifier.branch(0x100);
    EXPECT_TRUE(res->cls == PaClass::NonRepeating ||
                res->cls == PaClass::Repeating)
        << paClassName(res->cls);
    // The winning dynamic predictor beats the 50% static floor clearly.
    EXPECT_GT(100.0 * res->bestDynamicCorrect() / res->execs, 75.0);
}

TEST(PaClassifier, StronglyBiasedBranchIsIdealStatic)
{
    auto trace = workload::biasedTrace(0x100, 0.997, 5000, 9);
    PaClassifier classifier(trace);
    EXPECT_EQ(classifier.branch(0x100)->cls, PaClass::IdealStatic);
}

TEST(PaClassifier, UnstructuredBiasedBranchIsIdealStatic)
{
    // An i.i.d. 60%-taken branch: every dynamic scheme degenerates to
    // (at best) the majority direction, so the branch stays
    // unclassified (the paper's "simply not predictable" remainder,
    // §4.2.1). Exactly 50/50 noise is avoided here because on finite
    // samples the max over 32 fixed-k predictors wins coin-flip noise
    // edges -- an inherent property of best-of classification.
    auto trace = workload::biasedTrace(0x100, 0.6, 8000, 31);
    PaClassifier classifier(trace);
    EXPECT_EQ(classifier.branch(0x100)->cls, PaClass::IdealStatic);
}

TEST(PaClassifier, ClassFractionsAreDynamicWeighted)
{
    auto loop = workload::loopTrace(0x100, 5, 600);    // 3000 execs
    auto biased = workload::biasedTrace(0x200, 1.0, 1000, 3);
    auto trace = workload::interleave({loop, biased});
    PaClassifier classifier(trace);
    auto fractions = classifier.classFractions();
    EXPECT_NEAR(fractions[static_cast<size_t>(PaClass::Loop)],
                3000.0 / 4000.0, 0.01);
    EXPECT_NEAR(fractions[static_cast<size_t>(PaClass::IdealStatic)],
                1000.0 / 4000.0, 0.01);
    double sum = 0;
    for (double f : fractions)
        sum += f;
    EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(PaClassifier, StaticBucketBiasFraction)
{
    // Two static-class branches: one 99.9% biased, one 75% biased.
    auto hot = workload::biasedTrace(0x100, 0.999, 3000, 5);
    auto coin = workload::biasedTrace(0x200, 0.75, 3000, 7);
    auto trace = workload::interleave({hot, coin});
    PaClassifier classifier(trace);
    ASSERT_EQ(classifier.branch(0x100)->cls, PaClass::IdealStatic);
    ASSERT_EQ(classifier.branch(0x200)->cls, PaClass::IdealStatic);
    EXPECT_NEAR(classifier.staticBucketBiasFraction(0.99), 0.5, 0.02);
}

TEST(PaClassifier, LedgersExposePerBranchCounts)
{
    auto trace = workload::loopTrace(0x100, 6, 200);
    PaClassifier classifier(trace);
    const PaBranchResult *res = classifier.branch(0x100);
    EXPECT_EQ(classifier.loopLedger().branch(0x100).correct,
              res->loopCorrect);
    EXPECT_EQ(classifier.ifPasLedger().branch(0x100).correct,
              res->ifPasCorrect);
    EXPECT_EQ(classifier.bestPaLedger().branch(0x100).correct,
              res->bestDynamicCorrect());
}

TEST(PaClassifier, LoopEnhancementUsesLoopForLoopClassOnly)
{
    // Loop branch + biased branch; the base ledger is deliberately poor
    // on the loop branch and perfect on the biased one.
    auto loop = workload::loopTrace(0x100, 5, 200); // 1000 execs
    auto biased = workload::biasedTrace(0x200, 1.0, 1000, 3);
    auto trace = workload::interleave({loop, biased});
    PaClassifier classifier(trace);

    sim::Ledger base;
    base.setTally(0x100, 1000, 500, classifier.branch(0x100)->taken);
    base.setTally(0x200, 1000, 1000, 1000);

    double enhanced = classifier.loopEnhancedAccuracyPercent(base);
    uint64_t loop_correct = classifier.branch(0x100)->loopCorrect;
    double expected = 100.0 *
        static_cast<double>(loop_correct + 1000) / 2000.0;
    EXPECT_NEAR(enhanced, expected, 1e-9);
}

TEST(PaClassifierDeath, MismatchedBaseLedgerPanics)
{
    auto trace = workload::loopTrace(0x100, 5, 10);
    PaClassifier classifier(trace);
    sim::Ledger base;
    base.setTally(0x100, 7, 7, 7); // wrong exec count
    EXPECT_DEATH(classifier.loopEnhancedAccuracyPercent(base),
                 "different");
}

TEST(PaClassifier, MixedWorkloadCoversAllClasses)
{
    auto loop = workload::loopTrace(0x100, 11, 400);
    auto block = workload::blockPatternTrace(0x200, 50, 45, 50);
    auto biased = workload::biasedTrace(0x300, 0.999, 4000, 3);
    trace::Trace lfsr_trace("m");
    uint32_t lfsr = 0b110001;
    for (int i = 0; i < 4000; ++i) {
        bool bit = ((lfsr >> 0) ^ (lfsr >> 1)) & 1u;
        lfsr = (lfsr >> 1) | (static_cast<uint32_t>(bit) << 5);
        lfsr_trace.append({0x400, 0x480, BranchKind::Conditional, bit});
    }
    auto trace = workload::interleave({loop, block, biased, lfsr_trace});
    PaClassifier classifier(trace);
    EXPECT_EQ(classifier.branch(0x100)->cls, PaClass::Loop);
    EXPECT_EQ(classifier.branch(0x200)->cls, PaClass::Repeating);
    EXPECT_EQ(classifier.branch(0x300)->cls, PaClass::IdealStatic);
    EXPECT_EQ(classifier.branch(0x400)->cls, PaClass::NonRepeating);
}

} // namespace
} // namespace copra::core
