/**
 * @file
 * Unit tests for the configurable two-level predictor engine: index
 * functions, history scoping, and the signature behaviours (gshare
 * exploits cross-branch correlation; PAs exploits per-branch patterns).
 */

#include <gtest/gtest.h>

#include "predictor/two_level.hpp"
#include "sim/driver.hpp"
#include "workload/patterns.hpp"

namespace copra::predictor {
namespace {

trace::BranchRecord
cond(uint64_t pc, bool taken = true)
{
    return {pc, pc + 64, trace::BranchKind::Conditional, taken};
}

TEST(TwoLevelConfig, FactoriesSetGeometry)
{
    auto g = TwoLevelConfig::gshare(14);
    EXPECT_EQ(g.scope, TwoLevelConfig::Scope::Global);
    EXPECT_EQ(g.index, TwoLevelConfig::Index::Xor);
    EXPECT_EQ(g.historyBits, 14u);
    EXPECT_EQ(g.phtBits, 14u);

    auto p = TwoLevelConfig::pas(10, 8, 3);
    EXPECT_EQ(p.scope, TwoLevelConfig::Scope::PerAddress);
    EXPECT_EQ(p.index, TwoLevelConfig::Index::Concat);
    EXPECT_EQ(p.phtBits, 13u);

    auto gag = TwoLevelConfig::gag(12);
    EXPECT_EQ(gag.index, TwoLevelConfig::Index::HistoryOnly);

    auto pag = TwoLevelConfig::pag(9, 7);
    EXPECT_EQ(pag.scope, TwoLevelConfig::Scope::PerAddress);
    EXPECT_EQ(pag.phtBits, 9u);
}

TEST(TwoLevel, XorIndexMatchesDefinition)
{
    TwoLevel pred(TwoLevelConfig::gshare(8));
    // Drive history to a known value through updates of one branch.
    // History after T,N,T,T = 0b1011.
    pred.update(cond(0x0, true), true);
    pred.update(cond(0x0, true), false);
    pred.update(cond(0x0, true), true);
    pred.update(cond(0x0, true), true);
    uint64_t pc = 0x40; // pc >> 2 = 0x10
    EXPECT_EQ(pred.phtIndex(pc), (0b1011u ^ 0x10u) & 0xFFu);
}

TEST(TwoLevel, HistoryOnlyIndexIgnoresPc)
{
    TwoLevel pred(TwoLevelConfig::gag(6));
    pred.update(cond(0x0), true);
    EXPECT_EQ(pred.phtIndex(0x100), pred.phtIndex(0x2000));
    EXPECT_EQ(pred.phtIndex(0x100), 0b1u);
}

TEST(TwoLevel, ConcatIndexSelectsPerAddressSet)
{
    // GAs with 4-bit history, 2 pc-select bits.
    TwoLevel pred(TwoLevelConfig::gas(4, 2));
    pred.update(cond(0x0), true); // history = 0b0001
    // pc >> 2 low 2 bits select the PHT.
    EXPECT_EQ(pred.phtIndex(0x0), 0b000001u);
    EXPECT_EQ(pred.phtIndex(0x4), 0b010001u);
    EXPECT_EQ(pred.phtIndex(0x8), 0b100001u);
}

TEST(TwoLevel, GlobalHistoryIsSharedAcrossBranches)
{
    TwoLevel pred(TwoLevelConfig::gshare(8));
    size_t before = pred.phtIndex(0x100);
    pred.update(cond(0x999), true); // another branch shifts the history
    EXPECT_NE(pred.phtIndex(0x100), before);
}

TEST(TwoLevel, PerAddressHistoriesAreIsolated)
{
    TwoLevel pred(TwoLevelConfig::pas(8, 6, 2));
    size_t before = pred.phtIndex(0x100);
    // Updating a branch with a different BHT slot leaves 0x100 alone.
    pred.update(cond(0x104), true);
    EXPECT_EQ(pred.phtIndex(0x100), before);
    // Updating 0x100 itself moves it.
    pred.update(cond(0x100), true);
    EXPECT_NE(pred.phtIndex(0x100), before);
}

TEST(TwoLevel, LearnsAlternatingPattern)
{
    TwoLevel pred(TwoLevelConfig::gshare(8));
    auto trace = workload::periodicTrace(0x100, {true, false}, 500);
    auto result = sim::run(trace, pred);
    // After warmup the pattern is fully predictable.
    EXPECT_GT(result.accuracyPercent(), 95.0);
}

TEST(TwoLevel, GshareExploitsCrossBranchCorrelation)
{
    // Fig. 1a: Y random, X = Y's condition AND another. Knowing Y's
    // outcome (in the global history) pins X down far better than X's
    // own bias (62.5% for p1 = p2 = 0.5... exactly: X taken 25%).
    TwoLevel gshare(TwoLevelConfig::gshare(12));
    auto trace =
        workload::correlatedPairTrace(0x100, 0x200, 0.5, 0.5, 20000, 9);
    sim::Ledger ledger;
    sim::run(trace, gshare, &ledger);
    // Branch X: when Y not taken (50%), X is fully determined; when Y
    // taken, X = cond2 (50/50): gshare can reach ~75%+eps on X but a
    // static predictor only 75%... use the stronger check: gshare must
    // beat 80% overall because Y itself is 50% -- no. Check X alone:
    auto x = ledger.branch(0x200);
    // Predicting X: given Y not-taken -> N (perfect, 50% of execs);
    // given Y taken -> bias toward N (75% overall achievable without
    // correlation = max(0.25, 0.75) = 75%; with correlation the Y-taken
    // half is still 50/50 noise -> ceiling 75%). Both equal here, so use
    // correlated conditions instead: p2 = 0.9.
    (void)x;
    TwoLevel gshare2(TwoLevelConfig::gshare(12));
    auto trace2 =
        workload::correlatedPairTrace(0x300, 0x400, 0.5, 0.9, 20000, 9);
    sim::Ledger ledger2;
    sim::run(trace2, gshare2, &ledger2);
    auto x2 = ledger2.branch(0x400);
    // X = Y AND c2 with P(c2)=0.9: static best = max(45%, 55%) = 55%;
    // with Y in history: Y not-taken -> N (perfect), Y taken -> T (90%):
    // ceiling 95%.
    EXPECT_GT(100.0 * x2.accuracy(), 85.0);
}

TEST(TwoLevel, PasExploitsPerBranchPatternUnderGlobalNoise)
{
    // A periodic branch interleaved with a noise branch: the noise
    // scrambles global history but not per-address history.
    auto periodic = workload::periodicTrace(0x100, {true, true, false}, 4000);
    auto noise = workload::biasedTrace(0x200, 0.5, 12000, 17);
    auto trace = workload::interleave({periodic, noise});

    TwoLevel pas(TwoLevelConfig::pas(12, 8, 2));
    sim::Ledger pas_ledger;
    sim::run(trace, pas, &pas_ledger);
    EXPECT_GT(100.0 * pas_ledger.branch(0x100).accuracy(), 97.0);
}

TEST(TwoLevel, ResetRestoresColdState)
{
    TwoLevel pred(TwoLevelConfig::gshare(10));
    auto trace = workload::biasedTrace(0x100, 1.0, 100, 1);
    sim::run(trace, pred);
    EXPECT_TRUE(pred.predict(cond(0x100)));
    pred.reset();
    EXPECT_FALSE(pred.predict(cond(0x100)));
}

class HistoryLengthSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(HistoryLengthSweep, PerfectOnShortEnoughLoops)
{
    // A fixed-trip loop is fully predictable by gshare when the whole
    // period fits in the history.
    unsigned h = GetParam();
    unsigned trip = h; // period = trip fits exactly
    TwoLevel pred(TwoLevelConfig::gshare(h));
    auto trace = workload::loopTrace(0x100, trip, 3000 / trip + 50);
    auto result = sim::run(trace, pred);
    EXPECT_GT(result.accuracyPercent(), 98.0) << "h=" << h;
}

INSTANTIATE_TEST_SUITE_P(Lengths, HistoryLengthSweep,
                         ::testing::Values(4u, 8u, 12u, 16u));

TEST(TwoLevelCounters, OneBitHasNoHysteresisTwoBitDoes)
{
    // Drive both widths through the same sequence: four taken outcomes,
    // one not-taken, then return to the all-taken history context. The
    // 1-bit counter parrots the last outcome seen in that context
    // (not-taken); the 2-bit counter's hysteresis still predicts taken.
    auto run_sequence = [](unsigned bits) {
        TwoLevelConfig config = TwoLevelConfig::gag(2);
        config.counterBits = bits;
        TwoLevel pred(config);
        for (int i = 0; i < 4; ++i)
            pred.update(cond(0x100, true), true);
        pred.update(cond(0x100, true), false); // one deviation at ctx 11
        pred.update(cond(0x100, true), true);  // ctx 10
        pred.update(cond(0x100, true), true);  // ctx 01 -> history 11
        return pred.predict(cond(0x100, true)); // back at ctx 11
    };
    EXPECT_FALSE(run_sequence(1));
    EXPECT_TRUE(run_sequence(2));
}

TEST(TwoLevelCounters, TwoBitSurvivesLoopExitsBetterThanOneBit)
{
    // Smith's classic argument: on a loop, a 1-bit counter mispredicts
    // twice per iteration boundary (the exit and the re-entry), a 2-bit
    // counter once.
    auto trace = workload::loopTrace(0x100, 6, 500);
    TwoLevelConfig one = TwoLevelConfig::gshare(3);
    one.counterBits = 1;
    TwoLevelConfig two = TwoLevelConfig::gshare(3);
    two.counterBits = 2;
    // History 3 < trip 6: the exit is not visible in the pattern, so
    // the counters carry the load.
    TwoLevel pred1(one), pred2(two);
    double acc1 = sim::run(trace, pred1).accuracyPercent();
    double acc2 = sim::run(trace, pred2).accuracyPercent();
    EXPECT_GT(acc2, acc1 + 5.0);
}

TEST(TwoLevelCounters, WidthsSweepStaysConsistent)
{
    auto trace = workload::biasedTrace(0x100, 0.9, 3000, 3);
    for (unsigned bits : {1u, 2u, 3u, 4u, 5u}) {
        TwoLevelConfig config = TwoLevelConfig::gshare(8);
        config.counterBits = bits;
        TwoLevel pred(config);
        double acc = sim::run(trace, pred).accuracyPercent();
        EXPECT_GT(acc, 75.0) << bits;
        EXPECT_LE(acc, 100.0) << bits;
    }
}

TEST(TwoLevelDeath, InvalidGeometryIsFatal)
{
    TwoLevelConfig bad = TwoLevelConfig::gshare(16);
    bad.historyBits = 0;
    EXPECT_EXIT(TwoLevel{bad}, ::testing::ExitedWithCode(1), "history");
    TwoLevelConfig big = TwoLevelConfig::gshare(16);
    big.phtBits = 29;
    EXPECT_EXIT(TwoLevel{big}, ::testing::ExitedWithCode(1), "PHT");
    TwoLevelConfig wide = TwoLevelConfig::gshare(16);
    wide.counterBits = 9;
    EXPECT_EXIT(TwoLevel{wide}, ::testing::ExitedWithCode(1), "counter");
}

} // namespace
} // namespace copra::predictor
