/**
 * @file
 * Unit tests for the random program builder and the benchmark profiles.
 */

#include <gtest/gtest.h>

#include <set>

#include "trace/trace_stats.hpp"
#include "workload/builder.hpp"
#include "workload/profiles.hpp"

namespace copra::workload {
namespace {

TEST(Builder, BuildsAndRunsDefaultProfile)
{
    BenchmarkProfile profile;
    profile.targetStaticBranches = 200;
    profile.numFunctions = 4;
    Program prog = buildProgram(profile);
    EXPECT_EQ(prog.functionCount(), 4u);
    EXPECT_EQ(prog.conditionCount(), profile.numVars);
    EXPECT_GE(prog.staticBranchCount(), 150u);

    trace::Trace t = prog.run("default", 5000, 9);
    EXPECT_EQ(t.conditionalCount(), 5000u);
}

TEST(Builder, DeterministicPerBuildSeed)
{
    BenchmarkProfile profile;
    profile.targetStaticBranches = 150;
    profile.buildSeed = 77;
    Program a = buildProgram(profile);
    Program b = buildProgram(profile);
    trace::Trace ta = a.run("x", 2000, 3);
    trace::Trace tb = b.run("x", 2000, 3);
    ASSERT_EQ(ta.size(), tb.size());
    for (size_t i = 0; i < ta.size(); ++i)
        ASSERT_EQ(ta[i], tb[i]);
}

TEST(Builder, DifferentBuildSeedsGiveDifferentPrograms)
{
    BenchmarkProfile profile;
    profile.targetStaticBranches = 150;
    profile.buildSeed = 1;
    Program a = buildProgram(profile);
    profile.buildSeed = 2;
    Program b = buildProgram(profile);
    trace::Trace ta = a.run("x", 1000, 3);
    trace::Trace tb = b.run("x", 1000, 3);
    // The static branch populations should differ.
    trace::TraceStats sa(ta), sb(tb);
    std::set<uint64_t> pcs_a, pcs_b;
    for (const auto &[pc, st] : sa.perBranch())
        pcs_a.insert(pc);
    for (const auto &[pc, st] : sb.perBranch())
        pcs_b.insert(pc);
    EXPECT_NE(pcs_a, pcs_b);
}

TEST(Builder, SingleFunctionProfileWorks)
{
    BenchmarkProfile profile;
    profile.numFunctions = 1;
    profile.targetStaticBranches = 50;
    Program prog = buildProgram(profile);
    trace::Trace t = prog.run("one", 1000, 1);
    EXPECT_EQ(t.conditionalCount(), 1000u);
}

TEST(Builder, BiasKnobsAreLevelOnly)
{
    // Changing bias bands must not change the program structure: same
    // static branch sites, same record kinds, only outcomes may differ.
    BenchmarkProfile a;
    a.targetStaticBranches = 200;
    a.buildSeed = 5;
    a.moderateBiasLo = 0.60;
    a.moderateBiasHi = 0.90;
    BenchmarkProfile b = a;
    b.moderateBiasLo = 0.95;
    b.moderateBiasHi = 0.99;

    trace::Trace ta = buildProgram(a).run("a", 3000, 2);
    trace::Trace tb = buildProgram(b).run("b", 3000, 2);

    trace::TraceStats sa(ta), sb(tb);
    std::set<uint64_t> pcs_a, pcs_b;
    for (const auto &[pc, st] : sa.perBranch())
        pcs_a.insert(pc);
    for (const auto &[pc, st] : sb.perBranch())
        pcs_b.insert(pc);
    EXPECT_EQ(pcs_a, pcs_b);
}

TEST(Builder, FunctionsDoNotAliasInLowAddressBits)
{
    // Regression test: function bases must not be power-of-two aligned,
    // or same-offset branches of different functions collide in every
    // table predictor (see builder.cc kFunctionStride).
    BenchmarkProfile profile;
    profile.numFunctions = 8;
    profile.targetStaticBranches = 200;
    Program prog = buildProgram(profile);
    std::set<uint64_t> low_bits;
    for (size_t i = 0; i < prog.functionCount(); ++i)
        low_bits.insert((prog.function(i).entryPc >> 2) & 0xFFF);
    EXPECT_EQ(low_bits.size(), prog.functionCount());
}

TEST(Profiles, AllEightBenchmarksExist)
{
    const auto &names = benchmarkNames();
    ASSERT_EQ(names.size(), 8u);
    EXPECT_EQ(benchmarkShortNames().size(), 8u);
    for (const auto &name : names) {
        BenchmarkProfile profile = benchmarkProfile(name);
        EXPECT_EQ(profile.name, name);
        EXPECT_GT(profile.targetStaticBranches, 0u);
    }
}

TEST(Profiles, PaperReferencesCoverAllBenchmarks)
{
    for (const auto &name : benchmarkNames()) {
        const PaperReference &ref = paperReference(name);
        EXPECT_EQ(ref.name, name);
        EXPECT_GT(ref.gshare, 80.0);
        EXPECT_LT(ref.gshare, 100.0);
        EXPECT_GT(ref.paperDynamicBranches, 1000000u);
    }
}

TEST(Profiles, MakeBenchmarkTraceHonorsBranchCount)
{
    trace::Trace t = makeBenchmarkTrace("compress", 12345, 0);
    EXPECT_EQ(t.conditionalCount(), 12345u);
    EXPECT_EQ(t.name(), "compress");
}

TEST(Profiles, CanonicalSeedIsStable)
{
    trace::Trace a = makeBenchmarkTrace("xlisp", 2000, 0);
    trace::Trace b = makeBenchmarkTrace("xlisp", 2000, 0);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); i += 13)
        ASSERT_EQ(a[i], b[i]);
}

TEST(Profiles, ExplicitSeedOverrides)
{
    trace::Trace a = makeBenchmarkTrace("perl", 2000, 111);
    trace::Trace b = makeBenchmarkTrace("perl", 2000, 222);
    int same = 0;
    int conds = 0;
    for (size_t i = 0; i < std::min(a.size(), b.size()); ++i) {
        if (a[i].isConditional() && b[i].isConditional()) {
            ++conds;
            if (a[i].taken == b[i].taken)
                ++same;
        }
    }
    EXPECT_LT(same, conds); // outcomes differ somewhere
}

class AllBenchmarks : public ::testing::TestWithParam<std::string>
{
};

TEST_P(AllBenchmarks, GeneratesRequestedBranches)
{
    trace::Trace t = makeBenchmarkTrace(GetParam(), 20000, 0);
    EXPECT_EQ(t.conditionalCount(), 20000u);
    trace::TraceStats stats(t);
    // Every benchmark has a meaningful static branch population...
    EXPECT_GT(stats.staticBranches(), 30u);
    // ...and is not fully biased (there is something to predict).
    EXPECT_LT(stats.idealStaticCorrect(), stats.dynamicBranches());
}

TEST_P(AllBenchmarks, EmitsSomeControlFlowVariety)
{
    trace::Trace t = makeBenchmarkTrace(GetParam(), 20000, 0);
    bool saw_backward = false;
    for (const auto &rec : t.records()) {
        if (rec.isConditional() && rec.taken && rec.isBackward())
            saw_backward = true;
    }
    EXPECT_TRUE(saw_backward) << "no loop-closing branches";
}

INSTANTIATE_TEST_SUITE_P(Suite, AllBenchmarks,
                         ::testing::ValuesIn(benchmarkNames()));

TEST(ProfilesDeath, UnknownBenchmarkIsFatal)
{
    EXPECT_EXIT(benchmarkProfile("quake"), ::testing::ExitedWithCode(1),
                "unknown benchmark");
    EXPECT_EXIT(paperReference("quake"), ::testing::ExitedWithCode(1),
                "no paper reference");
}

} // namespace
} // namespace copra::workload
