/**
 * @file
 * Deliberately non-conforming predictors, compiled (and expected to
 * FAIL) by contracts_negative.cmake. Never part of any build target.
 *
 * Two violation flavours, selected by preprocessor define:
 *
 *  - default: a type that does not derive from Predictor and exposes
 *    none of the interface (breaks the structural clauses).
 *  - COPRA_BREAK_STATE_CONTRACT: a well-formed roster predictor that
 *    declares no COPRA_STATE_FIELDS and inherits the panicking state
 *    defaults instead of overriding them (breaks the state clauses).
 *
 * The test asserts the build stops AND that the diagnostic contains
 * the human-readable "copra predictor contract" clause text.
 */

#include "predictor/contracts.hpp"

#ifdef COPRA_BREAK_STATE_CONTRACT

namespace copra::predictor {

/** Runtime interface complete, state contract entirely missing. */
class StatelessRosterPredictor : public Predictor
{
  public:
    bool predict(const trace::BranchRecord &) override { return true; }
    void update(const trace::BranchRecord &, bool) override {}
    void reset() override {}
    std::string name() const override { return "stateless"; }
};

} // namespace copra::predictor

static_assert(
    copra::predictor::contracts::PredictorContract<
        copra::predictor::StatelessRosterPredictor>::ok,
    "unreachable: the state contract must reject this type first");

#else // structural violation

namespace copra::predictor {

class DefinitelyNotAPredictor
{
  public:
    int answer() const { return 42; }
};

} // namespace copra::predictor

static_assert(
    copra::predictor::contracts::PredictorContract<
        copra::predictor::DefinitelyNotAPredictor>::ok,
    "unreachable: the contract must reject this type first");

#endif
