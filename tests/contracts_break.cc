/**
 * @file
 * Deliberately non-conforming predictor, compiled (and expected to
 * FAIL) by contracts_negative.cmake. Never part of any build target.
 *
 * The type below misses the contract on purpose: it does not derive
 * from Predictor and exposes none of the interface. The test asserts
 * the build stops AND that the diagnostic contains the human-readable
 * "copra predictor contract" clause text.
 */

#include "predictor/contracts.hpp"

namespace copra::predictor {

class DefinitelyNotAPredictor
{
  public:
    int answer() const { return 42; }
};

} // namespace copra::predictor

static_assert(
    copra::predictor::contracts::PredictorContract<
        copra::predictor::DefinitelyNotAPredictor>::ok,
    "unreachable: the contract must reject this type first");
