#!/bin/sh
# A bench harness's stdout must be byte-identical whether the suite
# runs serially (--threads 1), sharded across an odd worker count, or
# sized through the COPRA_THREADS environment knob. Timing goes to
# stderr by design, so any stdout drift is a determinism regression in
# the parallel engine.
#
# Usage: threads_identical.sh <bench-binary> [bench args...]

set -eu

BIN="$1"
shift

OUT_SERIAL=$(mktemp)
OUT_SHARDED=$(mktemp)
OUT_ENV=$(mktemp)
trap 'rm -f "$OUT_SERIAL" "$OUT_SHARDED" "$OUT_ENV"' EXIT

"$BIN" --threads 1 "$@" > "$OUT_SERIAL" 2>/dev/null
"$BIN" --threads 7 "$@" > "$OUT_SHARDED" 2>/dev/null
COPRA_THREADS=13 "$BIN" --threads 0 "$@" > "$OUT_ENV" 2>/dev/null

if ! cmp -s "$OUT_SERIAL" "$OUT_SHARDED"; then
    echo "stdout differs between --threads 1 and --threads 7:"
    diff "$OUT_SERIAL" "$OUT_SHARDED" || true
    exit 1
fi
if ! cmp -s "$OUT_SERIAL" "$OUT_ENV"; then
    echo "stdout differs between --threads 1 and COPRA_THREADS=13:"
    diff "$OUT_SERIAL" "$OUT_ENV" || true
    exit 1
fi

echo "stdout byte-identical across serial, sharded, and env-sized runs"
exit 0
