/**
 * @file
 * Tests for the deterministic trace fuzzer and the byte-level corruptor:
 * same-seed reproducibility, shape coverage across a seed range, binary
 * round-trip bit-equality for every fuzzed trace, and corruptBytes
 * actually producing distinct, differing byte strings.
 */

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "check/fuzz.hpp"
#include "trace/trace_io.hpp"
#include "util/rng.hpp"

namespace copra::check {
namespace {

TEST(Fuzz, SameSeedSameTrace)
{
    for (uint64_t seed : {0ull, 1ull, 42ull, 0xdeadbeefull}) {
        trace::Trace a = fuzzTrace(seed, 1500);
        trace::Trace b = fuzzTrace(seed, 1500);
        ASSERT_EQ(a.size(), b.size()) << "seed " << seed;
        for (size_t i = 0; i < a.size(); ++i)
            ASSERT_EQ(a[i], b[i]) << "seed " << seed << " record " << i;
        EXPECT_EQ(a.name(), b.name());
        EXPECT_EQ(a.seed(), b.seed());
    }
}

TEST(Fuzz, DifferentSeedsDiffer)
{
    trace::Trace a = fuzzTrace(7, 1000);
    trace::Trace b = fuzzTrace(8, 1000);
    bool differ = a.size() != b.size();
    for (size_t i = 0; !differ && i < a.size(); ++i)
        differ = !(a[i] == b[i]);
    EXPECT_TRUE(differ);
}

TEST(Fuzz, ProducesRequestedConditionalVolume)
{
    for (uint64_t seed = 0; seed < 20; ++seed) {
        trace::Trace t = fuzzTrace(seed, 2000);
        size_t conditionals = 0;
        for (const auto &rec : t.records())
            if (rec.kind == trace::BranchKind::Conditional)
                ++conditionals;
        // Segment boundaries round, so allow slack — but the trace must
        // carry a real workload, not a handful of branches.
        EXPECT_GE(conditionals, 1000u) << "seed " << seed;
        EXPECT_LE(t.size(), 3 * 2000u) << "seed " << seed;
    }
}

TEST(Fuzz, EveryShapeGeneratesSomething)
{
    for (unsigned s = 0; s < kFuzzShapeCount; ++s) {
        auto shape = static_cast<FuzzShape>(s);
        Rng rng(uint64_t(100 + s));
        trace::Trace t("shape", 0);
        appendFuzzSegment(t, shape, rng, 500);
        EXPECT_GT(t.size(), 0u) << fuzzShapeName(shape);
        EXPECT_NE(fuzzShapeName(shape), nullptr);
    }
}

TEST(Fuzz, SeedRangeExercisesEveryShape)
{
    // The differential suite's default seed range must actually pull in
    // all adversarial shapes, not sample one corner forever. We detect
    // shape usage by the distinct-pc signature each generator leaves.
    std::set<std::string> names;
    for (uint64_t seed = 1; seed <= 100; ++seed)
        names.insert(fuzzTrace(seed, 200).name());
    // Names embed the seed, so this just sanity-checks the generator ran
    // the whole range; the real coverage check is statistical:
    EXPECT_EQ(names.size(), 100u);

    size_t degenerate_hits = 0, wide_hits = 0;
    for (uint64_t seed = 1; seed <= 100; ++seed) {
        trace::Trace t = fuzzTrace(seed, 400);
        std::set<uint64_t> pcs;
        for (const auto &rec : t.records())
            pcs.insert(rec.pc);
        if (pcs.size() <= 8)
            ++degenerate_hits;
        if (pcs.size() >= 64)
            ++wide_hits;
    }
    EXPECT_GT(degenerate_hits, 0u)
        << "no degenerate-pc traces in the default seed range";
    EXPECT_GT(wide_hits, 0u)
        << "no alias-heavy/wide traces in the default seed range";
}

TEST(Fuzz, FuzzedTracesRoundTripBitEqual)
{
    // Serialize -> deserialize -> serialize must be byte-identical for
    // every fuzzed trace; this is the strongest trace_io contract.
    for (uint64_t seed = 1; seed <= 50; ++seed) {
        trace::Trace t = fuzzTrace(seed, 600);
        std::ostringstream first;
        trace::writeBinary(t, first);
        std::istringstream in(first.str());
        trace::Trace back = trace::readBinary(in);
        std::ostringstream second;
        trace::writeBinary(back, second);
        ASSERT_EQ(first.str(), second.str()) << "seed " << seed;
        ASSERT_EQ(back.size(), t.size());
        for (size_t i = 0; i < t.size(); ++i)
            ASSERT_EQ(back[i], t[i]) << "seed " << seed << " rec " << i;
    }
}

TEST(Fuzz, CorruptBytesIsDeterministicAndAlwaysDiffers)
{
    trace::Trace t = fuzzTrace(3, 300);
    std::ostringstream os;
    trace::writeBinary(t, os);
    const std::string clean = os.str();
    for (uint64_t seed = 0; seed < 64; ++seed) {
        std::string a = corruptBytes(clean, seed);
        std::string b = corruptBytes(clean, seed);
        EXPECT_EQ(a, b) << "seed " << seed;
        EXPECT_NE(a, clean) << "seed " << seed;
    }
}

TEST(Fuzz, CorruptBytesNeverRoundTripsSilentlyWrong)
{
    // Decoding corrupted bytes must either throw or yield a trace; a
    // yielded trace re-encoded must NOT equal the corrupted input only
    // in ways that change decoded content (i.e. decode(corrupt) is
    // stable: encode(decode(x)) == encode(decode(encode(decode(x))))).
    trace::Trace t = fuzzTrace(11, 200);
    std::ostringstream os;
    trace::writeBinary(t, os);
    const std::string clean = os.str();
    for (uint64_t seed = 0; seed < 128; ++seed) {
        std::string bad = corruptBytes(clean, seed);
        try {
            std::istringstream in(bad);
            trace::Trace decoded = trace::readBinary(in);
            std::ostringstream re;
            trace::writeBinary(decoded, re);
            std::istringstream in2(re.str());
            trace::Trace decoded2 = trace::readBinary(in2);
            ASSERT_EQ(decoded2.size(), decoded.size()) << "seed " << seed;
            for (size_t i = 0; i < decoded.size(); ++i)
                ASSERT_EQ(decoded2[i], decoded[i])
                    << "seed " << seed << " rec " << i;
        } catch (const std::exception &) {
            // Rejecting corrupt input is the expected common case.
        }
    }
}

TEST(Fuzz, ReaderRejectsImplausibleHeaderWithoutHugeAllocation)
{
    // A hostile name-length field must be rejected up front rather than
    // driving a multi-gigabyte string allocation.
    trace::Trace t("n", 1);
    t.append({0x10, 0x20, trace::BranchKind::Conditional, true});
    std::ostringstream os;
    trace::writeBinary(t, os);
    std::string bytes = os.str();
    // v2 name_len field lives at offset 12..15 (little-endian).
    bytes[12] = bytes[13] = bytes[14] = bytes[15] = char(0xff);
    std::istringstream in(bytes);
    EXPECT_THROW(trace::readBinary(in), std::runtime_error);
}

} // namespace
} // namespace copra::check
