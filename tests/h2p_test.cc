/**
 * @file
 * Tests for the hard-to-predict branch analysis (core/h2p.hpp): the
 * Lin-Tarsa membership criterion, misprediction-CDF invariants,
 * per-branch best-of dominance, cross-seed stability, and a pinned H2P
 * set for one seeded workload so unintentional changes to the roster or
 * the criterion are loud.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/h2p.hpp"
#include "predictor/factory.hpp"
#include "sim/driver.hpp"
#include "workload/profiles.hpp"

namespace copra::core {
namespace {

sim::Ledger
ledgerOf(std::initializer_list<std::tuple<uint64_t, uint64_t, uint64_t>>
             rows)
{
    sim::Ledger ledger;
    for (const auto &[pc, execs, correct] : rows)
        ledger.setTally(pc, execs, correct, execs / 2);
    return ledger;
}

TEST(IdentifyH2p, AppliesBothCriteriaAndSortsByContribution)
{
    sim::Ledger ledger = ledgerOf({
        {0x100, 2000, 1900}, // H2P: 95% accuracy, 100 mispredicts
        {0x200, 999, 500},   // below exec floor despite 50% accuracy
        {0x300, 5000, 4990}, // 99.8% accurate: not hard
        {0x400, 1000, 950},  // H2P: 95%, 50 mispredicts
    });
    H2pReport report = identifyH2p(ledger);
    ASSERT_EQ(report.branches.size(), 2u);
    EXPECT_EQ(report.branches[0].pc, 0x100u);
    EXPECT_EQ(report.branches[0].mispredicts, 100u);
    EXPECT_EQ(report.branches[1].pc, 0x400u);
    EXPECT_EQ(report.staticBranches, 4u);
    EXPECT_EQ(report.dynamicBranches, 2000u + 999 + 5000 + 1000);
    EXPECT_EQ(report.totalMispredicts, 100u + 499 + 10 + 50);
    EXPECT_EQ(report.h2pMispredicts, 150u);
    EXPECT_DOUBLE_EQ(report.staticFraction(), 0.5);
}

TEST(IdentifyH2p, BoundaryAccuracyIsNotH2p)
{
    // Exactly 99% accurate at exactly the exec floor: accuracy is not
    // below the threshold, so the branch stays out.
    sim::Ledger ledger = ledgerOf({{0x100, 1000, 990}});
    EXPECT_TRUE(identifyH2p(ledger).branches.empty());
    // One more miss tips it in.
    ledger.setTally(0x100, 1000, 989, 500);
    EXPECT_EQ(identifyH2p(ledger).branches.size(), 1u);
}

TEST(BestPerBranch, DominatesEveryInput)
{
    sim::Ledger a = ledgerOf({{0x100, 100, 90}, {0x200, 100, 40}});
    sim::Ledger b = ledgerOf({{0x100, 100, 70}, {0x200, 100, 95}});
    sim::Ledger best = bestPerBranchLedger({&a, &b});
    EXPECT_EQ(best.branch(0x100).correct, 90u);
    EXPECT_EQ(best.branch(0x200).correct, 95u);
    EXPECT_GE(best.accuracyPercent(), a.accuracyPercent());
    EXPECT_GE(best.accuracyPercent(), b.accuracyPercent());
}

TEST(MispredictCdf, MonotoneAndNormalized)
{
    sim::Ledger ledger = ledgerOf({
        {0x100, 1000, 400},
        {0x200, 1000, 900},
        {0x300, 1000, 990},
        {0x400, 1000, 1000},
    });
    MispredictCdf cdf = mispredictCdf(ledger);
    ASSERT_EQ(cdf.points.size(), 4u);
    EXPECT_EQ(cdf.points.front().pc, 0x100u); // worst first
    for (size_t i = 1; i < cdf.points.size(); ++i) {
        EXPECT_GE(cdf.points[i - 1].mispredicts,
                  cdf.points[i].mispredicts);
        EXPECT_LE(cdf.points[i - 1].cumulativeFraction,
                  cdf.points[i].cumulativeFraction);
    }
    EXPECT_DOUBLE_EQ(cdf.points.back().cumulativeFraction, 1.0);
    // 600 of 710 mispredicts sit on the single worst branch.
    EXPECT_NEAR(cdf.points.front().cumulativeFraction, 600.0 / 710, 1e-12);
    // Top "1%" of 4 branches rounds up to the worst one.
    EXPECT_NEAR(cdf.fractionFromTopPercent(1.0), 600.0 / 710, 1e-12);
    EXPECT_EQ(cdf.branchesForFraction(0.5), 1u);
    EXPECT_EQ(cdf.branchesForFraction(1.0), 3u); // zero-miss pc excluded
}

TEST(MispredictCdf, EmptyAndPerfectLedgers)
{
    EXPECT_EQ(mispredictCdf(sim::Ledger{}).totalMispredicts, 0u);
    sim::Ledger perfect = ledgerOf({{0x100, 10, 10}});
    MispredictCdf cdf = mispredictCdf(perfect);
    EXPECT_EQ(cdf.totalMispredicts, 0u);
    EXPECT_DOUBLE_EQ(cdf.fractionFromTopPercent(10.0), 0.0);
    EXPECT_EQ(cdf.branchesForFraction(0.5), 0u);
}

TEST(H2pStability, JaccardOverSeeds)
{
    H2pReport a;
    a.branches = {{0x100, 0, 0, 0}, {0x200, 0, 0, 0}};
    H2pReport b;
    b.branches = {{0x200, 0, 0, 0}, {0x300, 0, 0, 0}};
    H2pStability s = h2pStability({a, b});
    EXPECT_EQ(s.unionSize, 3u);
    EXPECT_EQ(s.intersectionSize, 1u);
    EXPECT_NEAR(s.jaccard, 1.0 / 3.0, 1e-12);

    EXPECT_DOUBLE_EQ(h2pStability({a, a}).jaccard, 1.0);
    EXPECT_DOUBLE_EQ(h2pStability({}).jaccard, 1.0);
    H2pReport empty;
    EXPECT_DOUBLE_EQ(h2pStability({empty, empty}).jaccard, 1.0);
}

// --- Pinned workload H2P set ----------------------------------------
//
// The H2P branches of one seeded workload under the best-of roster are
// pinned by pc. Deterministic by construction (fixed trace seed, fully
// deterministic predictors); a change here means the roster, a hash
// function, or the criterion changed — update deliberately, the way
// golden snapshots are updated.

TEST(H2pPinned, GoWorkloadSeed1BestOfRoster)
{
    trace::Trace trace = workload::makeBenchmarkTrace("go", 200000, 1);
    std::vector<sim::Ledger> ledgers;
    for (const char *spec :
         {"gshare:h=16", "tage", "perceptron", "tournament"}) {
        predictor::PredictorPtr pred = predictor::makePredictor(spec);
        sim::Ledger ledger;
        sim::run(trace, *pred, &ledger);
        ledgers.push_back(std::move(ledger));
    }
    sim::Ledger best = bestPerBranchLedger(
        {&ledgers[0], &ledgers[1], &ledgers[2], &ledgers[3]});

    H2pReport report = identifyH2p(best);
    // H2P membership survives the best-of combination: hard under every
    // predictor, not an artifact of one table geometry.
    for (const H2pBranch &branch : report.branches) {
        EXPECT_GE(branch.execs, 1000u);
        EXPECT_LT(branch.accuracy, 0.99);
    }
    std::vector<uint64_t> pcs;
    for (const H2pBranch &branch : report.branches)
        pcs.push_back(branch.pc);
    std::sort(pcs.begin(), pcs.end());
    const std::vector<uint64_t> pinned = {
        310744,  310752,  1786732, 1786912, 1786960, 1786964, 1787024,
        1787044, 1787068, 1787116, 1787124, 1787244, 1787248, 1787292,
        1787304, 1787312, 2408452, 2797068, 2797072, 2797080, 2797084,
        2797172, 2797180, 2797184, 2874796, 2874800, 3030172};
    EXPECT_EQ(pcs, pinned) << "H2P set drifted; update deliberately";
}

} // namespace
} // namespace copra::core
