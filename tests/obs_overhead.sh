#!/bin/sh
# The telemetry overhead contract (ISSUE: instrumented parallel engine
# must stay within noise): one bench harness runs with metrics off and
# with metrics on, and
#   1. stdout must be byte-identical — telemetry writes only to stderr
#      and files, never into results;
#   2. the instrumented wall time (min over N runs, from the bench's
#      own "timing= total=...s" stderr line) must be within 3% of the
#      uninstrumented minimum, plus a small absolute slack so
#      microsecond-scale runs don't turn scheduler jitter into a
#      failure.
#
# Usage: obs_overhead.sh <bench-binary> [bench args...]

set -eu

BIN="$1"
shift

RUNS=3
DIR=$(mktemp -d)
trap 'rm -rf "$DIR"' EXIT

# Min-of-N total= seconds for one configuration; stdout of the last
# run is preserved at $2 for the byte-identity check.
measure() {
    mode="$1"
    out="$2"
    shift 2
    best=""
    i=0
    while [ "$i" -lt "$RUNS" ]; do
        if [ "$mode" = on ]; then
            "$BIN" "$@" --metrics-out "$DIR/manifest.json" \
                > "$out" 2> "$DIR/err" || exit 1
        else
            "$BIN" "$@" > "$out" 2> "$DIR/err" || exit 1
        fi
        t=$(sed -n 's/^timing= total=\([0-9.]*\)s.*/\1/p' "$DIR/err")
        if [ -z "$t" ]; then
            echo "no timing= line on stderr" >&2
            exit 1
        fi
        if [ -z "$best" ] || awk "BEGIN{exit !($t < $best)}"; then
            best="$t"
        fi
        i=$((i + 1))
    done
    echo "$best"
}

BASE=$(measure off "$DIR/base.out" "$@")
INSTR=$(measure on "$DIR/instr.out" "$@")

if ! cmp -s "$DIR/base.out" "$DIR/instr.out"; then
    echo "stdout differs between metrics-off and metrics-on runs:"
    diff "$DIR/base.out" "$DIR/instr.out" || true
    exit 1
fi

if [ ! -s "$DIR/manifest.json" ]; then
    echo "metrics-on run wrote no manifest"
    exit 1
fi

# Budget: 3% relative plus 20ms absolute slack (tiny suites measure
# scheduler noise, not telemetry).
if awk "BEGIN{exit !($INSTR > $BASE * 1.03 + 0.020)}"; then
    echo "telemetry overhead too high: base=${BASE}s instrumented=${INSTR}s"
    exit 1
fi

echo "ok: base=${BASE}s instrumented=${INSTR}s (stdout byte-identical)"
exit 0
