/**
 * @file
 * Unit tests for best-predictor accounting: splits, accuracy-difference
 * percentiles, and ledger combinators (paper §5).
 */

#include <gtest/gtest.h>

#include "core/best_of.hpp"

namespace copra::core {
namespace {

sim::Ledger
ledgerOf(std::initializer_list<std::tuple<uint64_t, uint64_t, uint64_t,
                                          uint64_t>> rows)
{
    sim::Ledger ledger;
    for (const auto &[pc, execs, correct, taken] : rows)
        ledger.setTally(pc, execs, correct, taken);
    return ledger;
}

TEST(BestOfSplit, PartitionsByPerBranchWinner)
{
    // Branch 1: A wins. Branch 2: B wins. Branch 3: static wins.
    sim::Ledger a = ledgerOf({{1, 100, 90, 50},
                              {2, 100, 40, 50},
                              {3, 100, 50, 95}});
    sim::Ledger b = ledgerOf({{1, 100, 70, 50},
                              {2, 100, 80, 50},
                              {3, 100, 60, 95}});
    sim::Ledger st = idealStaticLedger(a);
    // st: branch1 max(50,50)=50 < 90; branch2 50 < 80; branch3
    // max(95,5)=95 >= max(50,60).
    BestOfSplit split = bestOfSplit(a, b, st);
    EXPECT_NEAR(split.fracA, 1.0 / 3.0, 1e-12);
    EXPECT_NEAR(split.fracB, 1.0 / 3.0, 1e-12);
    EXPECT_NEAR(split.fracStatic, 1.0 / 3.0, 1e-12);
}

TEST(BestOfSplit, TiesGoToStaticThenA)
{
    sim::Ledger a = ledgerOf({{1, 100, 60, 60}, {2, 100, 70, 50}});
    sim::Ledger b = ledgerOf({{1, 100, 60, 60}, {2, 100, 70, 50}});
    sim::Ledger st = idealStaticLedger(a);
    // Branch 1: static 60 == dynamic max 60 -> static. Branch 2: A ties
    // B at 70 > static 50 -> A.
    BestOfSplit split = bestOfSplit(a, b, st);
    EXPECT_NEAR(split.fracStatic, 0.5, 1e-12);
    EXPECT_NEAR(split.fracA, 0.5, 1e-12);
    EXPECT_NEAR(split.fracB, 0.0, 1e-12);
}

TEST(BestOfSplit, WeightsByExecutionFrequency)
{
    sim::Ledger a = ledgerOf({{1, 900, 900, 450}, {2, 100, 10, 50}});
    sim::Ledger b = ledgerOf({{1, 900, 100, 450}, {2, 100, 90, 50}});
    sim::Ledger st = idealStaticLedger(a);
    BestOfSplit split = bestOfSplit(a, b, st);
    EXPECT_NEAR(split.fracA, 0.9, 1e-12);
    EXPECT_NEAR(split.fracB, 0.1, 1e-12);
}

TEST(BestOfSplit, StaticBiasedFraction)
{
    // Two static-best branches: one 100% biased, one 50% biased.
    sim::Ledger a = ledgerOf({{1, 100, 20, 100}, {2, 100, 20, 50}});
    sim::Ledger b = a;
    sim::Ledger st = idealStaticLedger(a);
    BestOfSplit split = bestOfSplit(a, b, st, 0.99);
    EXPECT_NEAR(split.fracStatic, 1.0, 1e-12);
    EXPECT_NEAR(split.staticBiasedFraction, 0.5, 1e-12);
}

TEST(BestOfSplit, EmptyLedgersGiveZeroSplit)
{
    sim::Ledger a, b, st;
    BestOfSplit split = bestOfSplit(a, b, st);
    EXPECT_DOUBLE_EQ(split.fracA + split.fracB + split.fracStatic, 0.0);
}

TEST(BestOfSplitDeath, MismatchedLedgersPanic)
{
    sim::Ledger a = ledgerOf({{1, 100, 50, 50}});
    sim::Ledger b = ledgerOf({{1, 90, 50, 50}});
    sim::Ledger st = idealStaticLedger(a);
    EXPECT_DEATH(bestOfSplit(a, b, st), "different traces");
}

TEST(AccuracyDifference, PercentilesReflectPerBranchGaps)
{
    // Branch 1 (weight 50): A - B = +20 points. Branch 2 (weight 50):
    // A - B = -40 points.
    sim::Ledger a = ledgerOf({{1, 50, 45, 25}, {2, 50, 10, 25}});
    sim::Ledger b = ledgerOf({{1, 50, 35, 25}, {2, 50, 30, 25}});
    WeightedPercentiles wp = accuracyDifference(a, b);
    EXPECT_EQ(wp.totalWeight(), 100u);
    EXPECT_DOUBLE_EQ(wp.percentile(10), -40.0);
    EXPECT_DOUBLE_EQ(wp.percentile(90), 20.0);
}

TEST(IdealStaticLedger, ComputesMajorityFromTakenCounts)
{
    sim::Ledger ref = ledgerOf({{1, 100, 0, 80}, {2, 100, 0, 20}});
    sim::Ledger st = idealStaticLedger(ref);
    EXPECT_EQ(st.branch(1).correct, 80u);
    EXPECT_EQ(st.branch(2).correct, 80u);
    EXPECT_EQ(st.branch(1).execs, 100u);
}

TEST(MaxLedger, TakesPerBranchMaximum)
{
    sim::Ledger a = ledgerOf({{1, 10, 3, 5}, {2, 10, 9, 5}});
    sim::Ledger b = ledgerOf({{1, 10, 7, 5}, {2, 10, 2, 5}});
    sim::Ledger m = maxLedger(a, b);
    EXPECT_EQ(m.branch(1).correct, 7u);
    EXPECT_EQ(m.branch(2).correct, 9u);
    EXPECT_DOUBLE_EQ(m.accuracyPercent(), 80.0);
}

TEST(MaxLedger, IsIdempotentAndCommutativeOnCorrectCounts)
{
    sim::Ledger a = ledgerOf({{1, 10, 3, 5}, {2, 10, 9, 5}});
    sim::Ledger b = ledgerOf({{1, 10, 7, 5}, {2, 10, 2, 5}});
    sim::Ledger ab = maxLedger(a, b);
    sim::Ledger ba = maxLedger(b, a);
    EXPECT_EQ(ab.branch(1).correct, ba.branch(1).correct);
    EXPECT_EQ(ab.branch(2).correct, ba.branch(2).correct);
    sim::Ledger aa = maxLedger(a, a);
    EXPECT_EQ(aa.branch(1).correct, a.branch(1).correct);
}

} // namespace
} // namespace copra::core
