/**
 * @file
 * Robustness sweep: every predictor in the zoo against randomized
 * stress traces — mixed record kinds, pathological pc layouts, phase
 * changes — checking the structural invariants that must hold for any
 * predictor (determinism, result bounds, ledger consistency, reset
 * semantics), independent of accuracy.
 */

#include <gtest/gtest.h>

#include "core/oracle.hpp"
#include "predictor/factory.hpp"
#include "sim/driver.hpp"
#include "util/rng.hpp"
#include "workload/patterns.hpp"

namespace copra {
namespace {

/** A stress trace with mixed kinds and adversarial pc patterns. */
trace::Trace
stressTrace(uint64_t seed, size_t conditionals)
{
    trace::Trace t("stress", seed);
    Rng rng(seed);
    size_t emitted = 0;
    while (emitted < conditionals) {
        double roll = rng.uniform();
        if (roll < 0.70) {
            // Conditional with adversarial pcs: aliasing-prone strides,
            // identical low bits, and occasional huge addresses.
            uint64_t pc;
            switch (rng.index(4)) {
              case 0:
                pc = 0x1000 + 4 * rng.index(8);
                break;
              case 1:
                pc = 0x1000 + (uint64_t(1) << (10 + rng.index(6)));
                break;
              case 2:
                pc = 0xffff0000ull + 4 * rng.index(16);
                break;
              default:
                pc = 4 * rng.index(1u << 20);
            }
            bool backward = rng.bernoulli(0.3);
            uint64_t target = backward && pc >= 256
                ? pc - 256 : pc + 4 + 4 * rng.index(64);
            t.append({pc, target, trace::BranchKind::Conditional,
                      rng.bernoulli(0.5)});
            ++emitted;
        } else if (roll < 0.85) {
            uint64_t pc = 4 * rng.index(1u << 16);
            t.append({pc, 4 * rng.index(1u << 16),
                      trace::BranchKind::Jump, true});
        } else if (roll < 0.93) {
            uint64_t pc = 4 * rng.index(1u << 16);
            t.append({pc, 4 * rng.index(1u << 16),
                      trace::BranchKind::Call, true});
        } else {
            uint64_t pc = 4 * rng.index(1u << 16);
            t.append({pc, 4 * rng.index(1u << 16),
                      trace::BranchKind::Return, true});
        }
    }
    return t;
}

class ZooRobustness : public ::testing::TestWithParam<std::string>
{
};

TEST_P(ZooRobustness, SurvivesStressTraceWithConsistentAccounting)
{
    auto trace = stressTrace(0xBEEF, 5000);
    auto pred = predictor::makePredictor(GetParam());
    sim::Ledger ledger;
    auto result = sim::run(trace, *pred, &ledger);
    EXPECT_EQ(result.dynamicBranches, 5000u);
    EXPECT_LE(result.correct, result.dynamicBranches);
    EXPECT_GE(result.accuracyPercent(), 0.0);
    EXPECT_LE(result.accuracyPercent(), 100.0);
    EXPECT_EQ(ledger.dynamic(), result.dynamicBranches);
    EXPECT_EQ(ledger.correct(), result.correct);
}

TEST_P(ZooRobustness, IsDeterministic)
{
    auto trace = stressTrace(0xF00D, 3000);
    auto a = predictor::makePredictor(GetParam());
    auto b = predictor::makePredictor(GetParam());
    EXPECT_EQ(sim::run(trace, *a).correct, sim::run(trace, *b).correct);
}

TEST_P(ZooRobustness, ResetReproducesFirstRun)
{
    auto trace = stressTrace(0xCAFE, 3000);
    auto pred = predictor::makePredictor(GetParam());
    uint64_t first = sim::run(trace, *pred).correct;
    pred->reset();
    uint64_t second = sim::run(trace, *pred).correct;
    EXPECT_EQ(first, second);
}

TEST_P(ZooRobustness, PhaseChangeDoesNotBreakAccounting)
{
    // Concatenate two stress traces with disjoint behaviour.
    auto t1 = stressTrace(1, 2000);
    auto t2 = stressTrace(2, 2000);
    trace::Trace combined("phases");
    for (const auto &rec : t1.records())
        combined.append(rec);
    for (const auto &rec : t2.records())
        combined.append(rec);
    auto pred = predictor::makePredictor(GetParam());
    auto result = sim::run(combined, *pred);
    EXPECT_EQ(result.dynamicBranches, 4000u);
}

INSTANTIATE_TEST_SUITE_P(
    Zoo, ZooRobustness,
    ::testing::ValuesIn(predictor::knownPredictors()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

TEST(OracleTagFilter, EachMethodAloneStillWorks)
{
    auto trace = workload::correlatedPairTrace(0x100, 0x200, 0.5, 1.0,
                                               4000, 3);
    using Filter = core::OracleConfig::TagFilter;
    for (Filter filter : {Filter::OccurrenceOnly, Filter::BackwardOnly,
                          Filter::Both}) {
        core::OracleConfig config;
        config.tagFilter = filter;
        core::SelectiveOracle oracle(trace, config);
        const auto *x = oracle.branch(0x200);
        ASSERT_NE(x, nullptr);
        // The Y0 correlation is visible under either tagging method
        // (no backward transfers here, so method B numbers are all 0).
        EXPECT_GT(100.0 * x->correct[0] / x->execs, 98.0)
            << static_cast<int>(filter);
        // The filter is actually enforced on the chosen tags.
        for (const auto &tag : x->chosen[0]) {
            if (filter == Filter::OccurrenceOnly)
                EXPECT_EQ(tag.method(), core::TagMethod::Occurrence);
            if (filter == Filter::BackwardOnly)
                EXPECT_EQ(tag.method(), core::TagMethod::BackwardCount);
        }
    }
}

TEST(OracleTagFilter, BackwardOnlyWinsOnIterationPinnedCorrelation)
{
    // The in-path trace closes each iteration with a backward jump;
    // method B pins "V this iteration" exactly while occurrence tags
    // are diluted by stale instances (see selective_test).
    auto trace = workload::inPathTrace(0x100, 0.5, 0.5, 0.5, 10000, 13);
    using Filter = core::OracleConfig::TagFilter;

    auto accuracy_for = [&](Filter filter) {
        core::OracleConfig config;
        config.tagFilter = filter;
        core::SelectiveOracle oracle(trace, config);
        const auto *x = oracle.branch(0x140);
        return 100.0 * static_cast<double>(x->correct[0]) /
            static_cast<double>(x->execs);
    };
    double backward = accuracy_for(Filter::BackwardOnly);
    double both = accuracy_for(Filter::Both);
    // The union must recover whatever the better single method found.
    EXPECT_GE(both + 0.5, backward);
    EXPECT_GT(backward, 90.0);
}

} // namespace
} // namespace copra
