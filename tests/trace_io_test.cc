/**
 * @file
 * Unit tests for binary and text trace serialization.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "trace/trace_io.hpp"
#include "workload/patterns.hpp"

namespace copra::trace {
namespace {

Trace
sampleTrace()
{
    Trace t("sample", 0xdeadbeef);
    t.append({0x100, 0x180, BranchKind::Conditional, true});
    t.append({0x104, 0x200, BranchKind::Call, true});
    t.append({0x204, 0x108, BranchKind::Return, true});
    t.append({0x108, 0x090, BranchKind::Conditional, false});
    t.append({0x10c, 0x050, BranchKind::Jump, true});
    return t;
}

TEST(TraceIoBinary, RoundTripsExactly)
{
    Trace original = sampleTrace();
    std::stringstream buf;
    writeBinary(original, buf);
    Trace loaded = readBinary(buf);

    EXPECT_EQ(loaded.name(), original.name());
    EXPECT_EQ(loaded.seed(), original.seed());
    ASSERT_EQ(loaded.size(), original.size());
    EXPECT_EQ(loaded.conditionalCount(), original.conditionalCount());
    for (size_t i = 0; i < original.size(); ++i)
        EXPECT_EQ(loaded[i], original[i]) << "record " << i;
}

TEST(TraceIoBinary, EmptyTraceRoundTrips)
{
    Trace empty("nothing", 1);
    std::stringstream buf;
    writeBinary(empty, buf);
    Trace loaded = readBinary(buf);
    EXPECT_EQ(loaded.name(), "nothing");
    EXPECT_TRUE(loaded.empty());
}

TEST(TraceIoBinary, LargeGeneratedTraceRoundTrips)
{
    Trace original = workload::biasedTrace(0x400, 0.7, 5000, 42);
    std::stringstream buf;
    writeBinary(original, buf);
    Trace loaded = readBinary(buf);
    ASSERT_EQ(loaded.size(), original.size());
    for (size_t i = 0; i < original.size(); i += 97)
        EXPECT_EQ(loaded[i], original[i]);
}

TEST(TraceIoBinary, BadMagicThrows)
{
    std::stringstream buf("NOTATRACE-AT-ALL............");
    EXPECT_THROW(readBinary(buf), std::runtime_error);
}

TEST(TraceIoBinary, TruncatedInputThrows)
{
    Trace original = sampleTrace();
    std::stringstream buf;
    writeBinary(original, buf);
    std::string bytes = buf.str();
    std::stringstream cut(bytes.substr(0, bytes.size() - 5));
    EXPECT_THROW(readBinary(cut), std::runtime_error);
}

TEST(TraceIoBinary, FutureVersionRejected)
{
    Trace original("v", 0);
    std::stringstream buf;
    writeBinary(original, buf);
    std::string bytes = buf.str();
    bytes[8] = 99; // bump the version field
    std::stringstream bad(bytes);
    EXPECT_THROW(readBinary(bad), std::runtime_error);
}

TEST(TraceIoBinary, InvalidKindRejected)
{
    Trace original;
    original.append({0x100, 0x104, BranchKind::Conditional, true});
    std::stringstream buf;
    writeBinary(original, buf);
    std::string bytes = buf.str();
    bytes[bytes.size() - 2] = 42; // corrupt the kind byte
    std::stringstream bad(bytes);
    EXPECT_THROW(readBinary(bad), std::runtime_error);
}

TEST(TraceIoText, RoundTripsRecordsAndHeader)
{
    Trace original = sampleTrace();
    std::stringstream buf;
    writeText(original, buf);
    Trace loaded = readText(buf);

    EXPECT_EQ(loaded.name(), "sample");
    EXPECT_EQ(loaded.seed(), 0xdeadbeefu);
    ASSERT_EQ(loaded.size(), original.size());
    for (size_t i = 0; i < original.size(); ++i)
        EXPECT_EQ(loaded[i], original[i]) << "record " << i;
}

TEST(TraceIoText, IgnoresBlankAndCommentLines)
{
    std::stringstream in(
        "# name hand\n"
        "\n"
        "# a free-form comment\n"
        "cond 0x100 0x180 T\n"
        "\n"
        "cond 0x104 0x080 N\n");
    Trace t = readText(in);
    EXPECT_EQ(t.name(), "hand");
    ASSERT_EQ(t.size(), 2u);
    EXPECT_TRUE(t[0].taken);
    EXPECT_FALSE(t[1].taken);
    EXPECT_TRUE(t[1].isBackward());
}

TEST(TraceIoText, MalformedLineThrows)
{
    std::stringstream in("cond 0x100\n");
    EXPECT_THROW(readText(in), std::runtime_error);
}

TEST(TraceIoText, UnknownKindThrows)
{
    std::stringstream in("sproing 0x100 0x104 T\n");
    EXPECT_THROW(readText(in), std::runtime_error);
}

TEST(TraceIoText, BadOutcomeThrows)
{
    std::stringstream in("cond 0x100 0x104 X\n");
    EXPECT_THROW(readText(in), std::runtime_error);
}

TEST(TraceIoFile, SaveAndLoadByPath)
{
    std::string path = ::testing::TempDir() + "/copra_io_test.trc";
    Trace original = sampleTrace();
    saveBinary(original, path);
    Trace loaded = loadBinary(path);
    ASSERT_EQ(loaded.size(), original.size());
    EXPECT_EQ(loaded[0], original[0]);
    std::remove(path.c_str());
}

TEST(TraceIoFile, MissingFileThrows)
{
    EXPECT_THROW(loadBinary("/nonexistent/dir/trace.trc"),
                 std::runtime_error);
}

} // namespace
} // namespace copra::trace
