/**
 * @file
 * Deliberate lock-discipline violations, compiled only by the
 * `thread_safety_negative` ctest entry (tests/thread_safety_negative.sh)
 * — never part of any build target. A Clang compile with
 * -Wthread-safety -Werror=thread-safety must reject every function
 * below with a readable "requires holding mutex" diagnostic; if this
 * file ever compiles cleanly there, the capability annotations in
 * util/sync.hpp and util/thread_annotations.hpp have rotted to no-ops.
 */

#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace copra {

/** The canonical annotated shared-state shape used across the tree. */
class GuardedCounter
{
  public:
    // PLANTED: writes guarded state with no lock held.
    void
    bumpUnguarded()
    {
        ++value_;
    }

    // PLANTED: declares the requirement but never takes the lock.
    int
    readWithoutAcquiring()
    {
        return peek();
    }

    // Correctly guarded — must NOT be diagnosed; keeps the test honest
    // about rejecting the violations rather than the whole idiom.
    void
    bumpGuarded()
    {
        util::MutexLock lock(mutex_);
        ++value_;
    }

  private:
    int
    peek() COPRA_REQUIRES(mutex_)
    {
        return value_;
    }

    util::Mutex mutex_;
    int value_ COPRA_GUARDED_BY(mutex_) = 0;
};

// PLANTED: releases a mutex the caller never acquired.
void
unbalancedRelease(util::Mutex &mutex)
{
    mutex.unlock();
}

} // namespace copra
