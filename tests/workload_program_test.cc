/**
 * @file
 * Unit tests for the program model: statement semantics, trip generators,
 * execution budget, and determinism.
 */

#include <gtest/gtest.h>

#include "trace/trace_stats.hpp"
#include "workload/program.hpp"

namespace copra::workload {
namespace {

using trace::BranchKind;

/** A program whose driver is a single If over variable 0. */
Program
singleIfProgram(const ConditionSpec &spec)
{
    Program prog;
    prog.addCondition(spec);
    auto body = std::make_unique<BlockStmt>();
    body->append(std::make_unique<SampleStmt>(0));
    body->append(std::make_unique<IfStmt>(0x100, Pred::var(0), nullptr,
                                          nullptr));
    Function driver;
    driver.entryPc = 0x100;
    driver.returnPc = 0x1fc;
    driver.body = std::move(body);
    prog.addFunction(std::move(driver));
    return prog;
}

TEST(ProgramModel, IfEmitsOutcomeOfPredicate)
{
    // Periodic T,F: outcomes must alternate exactly.
    Program prog = singleIfProgram(ConditionSpec::periodic(0b01, 2));
    trace::Trace t = prog.run("if", 10, 1);
    ASSERT_EQ(t.conditionalCount(), 10u);
    // Initial value consumed one sample; each iteration resamples, so the
    // branch sees samples 1, 2, 3, ... of the pattern T F T F ...
    for (size_t i = 0; i < t.size(); ++i) {
        ASSERT_TRUE(t[i].isConditional());
        EXPECT_EQ(t[i].pc, 0x100u);
    }
    // Outcomes alternate (phase depends on the initial sample).
    for (size_t i = 2; i < t.size(); ++i)
        EXPECT_EQ(t[i].taken, t[i - 2].taken);
    EXPECT_NE(t[0].taken, t[1].taken);
}

TEST(ProgramModel, BudgetStopsExactly)
{
    Program prog = singleIfProgram(ConditionSpec::biased(0.5));
    trace::Trace t = prog.run("budget", 1234, 7);
    EXPECT_EQ(t.conditionalCount(), 1234u);
}

TEST(ProgramModel, DeterministicPerSeed)
{
    Program prog = singleIfProgram(ConditionSpec::biased(0.5));
    trace::Trace a = prog.run("d", 500, 42);
    trace::Trace b = prog.run("d", 500, 42);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i)
        ASSERT_EQ(a[i], b[i]);
}

TEST(ProgramModel, DifferentSeedsDiffer)
{
    Program prog = singleIfProgram(ConditionSpec::biased(0.5));
    trace::Trace a = prog.run("d", 500, 1);
    trace::Trace b = prog.run("d", 500, 2);
    int same = 0;
    for (size_t i = 0; i < a.size(); ++i)
        if (a[i].taken == b[i].taken)
            ++same;
    EXPECT_LT(same, 450); // overwhelmingly unlikely to match
}

TEST(ProgramModel, RunParallelSmallBudgetMatchesRunExactly)
{
    // Budgets that fit in one generation chunk must replay run()'s
    // stream byte for byte — this keeps every golden and test budget
    // identical to the serial generator.
    Program prog = singleIfProgram(ConditionSpec::biased(0.6));
    trace::Trace serial = prog.run("p", 5000, 11);
    trace::Trace parallel = prog.runParallel("p", 5000, 11);
    EXPECT_EQ(parallel.name(), serial.name());
    EXPECT_EQ(parallel.seed(), serial.seed());
    ASSERT_EQ(parallel.size(), serial.size());
    for (size_t i = 0; i < serial.size(); ++i)
        ASSERT_EQ(parallel[i], serial[i]) << "record " << i;
}

TEST(ProgramModel, RunParallelMultiChunkIsDeterministic)
{
    // A budget spanning several chunks exercises the fan-out; pool
    // scheduling varies between calls, so equality here checks the
    // index-ordered concatenation really is schedule-independent.
    Program prog = singleIfProgram(ConditionSpec::biased(0.5));
    const uint64_t budget = 600000; // > 2 chunks of 2^18
    trace::Trace a = prog.runParallel("p", budget, 3);
    trace::Trace b = prog.runParallel("p", budget, 3);
    EXPECT_EQ(a.conditionalCount(), budget);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i)
        ASSERT_EQ(a[i], b[i]) << "record " << i;
}

TEST(ProgramModel, RunParallelChunkZeroReplaysTheSerialStream)
{
    // Chunk 0 keeps the caller's seed, so the first chunk of a
    // multi-chunk trace is exactly the serial trace of one chunk.
    Program prog = singleIfProgram(ConditionSpec::biased(0.5));
    const uint64_t chunk = uint64_t(1) << 18;
    trace::Trace parallel = prog.runParallel("p", chunk * 2 + 100, 9);
    trace::Trace serial = prog.run("p", chunk, 9);
    ASSERT_GE(parallel.size(), serial.size());
    for (size_t i = 0; i < serial.size(); ++i)
        ASSERT_EQ(parallel[i], serial[i]) << "record " << i;
}

TEST(ProgramModel, ForLoopEmitsForTypePattern)
{
    Program prog;
    size_t site = prog.addTripSite(TripSpec::fixed(4));
    auto body = std::make_unique<BlockStmt>();
    body->append(std::make_unique<ForStmt>(0x100, 0x140, site, nullptr));
    Function driver;
    driver.entryPc = 0x100;
    driver.returnPc = 0x1fc;
    driver.body = std::move(body);
    prog.addFunction(std::move(driver));

    trace::Trace t = prog.run("for", 8, 1);
    ASSERT_EQ(t.size(), 8u);
    // Per invocation: taken, taken, taken, not-taken (trip = 4).
    for (int inv = 0; inv < 2; ++inv) {
        for (int i = 0; i < 3; ++i)
            EXPECT_TRUE(t[inv * 4 + i].taken);
        EXPECT_FALSE(t[inv * 4 + 3].taken);
    }
    // The loop-closing branch is backward.
    EXPECT_TRUE(t[0].isBackward());
    EXPECT_EQ(t[0].target, 0x100u);
}

TEST(ProgramModel, WhileLoopEmitsWhileTypePattern)
{
    Program prog;
    size_t site = prog.addTripSite(TripSpec::fixed(3));
    auto body = std::make_unique<BlockStmt>();
    body->append(
        std::make_unique<WhileStmt>(0x100, 0x144, 0x140, site, nullptr));
    Function driver;
    driver.entryPc = 0x100;
    driver.returnPc = 0x1fc;
    driver.body = std::move(body);
    prog.addFunction(std::move(driver));

    trace::Trace t = prog.run("while", 8, 1);
    // Per invocation: exit test N,N,N then T, with backward jumps after
    // each body iteration.
    unsigned conds = 0;
    bool expect[] = {false, false, false, true};
    unsigned jumps = 0;
    for (size_t i = 0; i < t.size(); ++i) {
        if (t[i].isConditional()) {
            EXPECT_EQ(t[i].taken, expect[conds % 4]) << "cond " << conds;
            ++conds;
        } else {
            EXPECT_EQ(t[i].kind, BranchKind::Jump);
            EXPECT_TRUE(t[i].isBackward());
            ++jumps;
        }
    }
    EXPECT_EQ(conds, 8u);
    EXPECT_EQ(jumps, 6u); // 3 per completed invocation
}

TEST(ProgramModel, ChainStopsAtFirstTrueArm)
{
    Program prog;
    prog.addCondition(ConditionSpec::biased(1.0));  // always true
    prog.addCondition(ConditionSpec::biased(0.0));  // always false

    std::vector<ChainStmt::Arm> arms;
    arms.push_back({0x100, Pred::var(1), nullptr}); // false arm
    arms.push_back({0x104, Pred::var(0), nullptr}); // true arm
    arms.push_back({0x108, Pred::var(0), nullptr}); // never reached
    auto body = std::make_unique<BlockStmt>();
    body->append(std::make_unique<ChainStmt>(std::move(arms), nullptr));
    Function driver;
    driver.entryPc = 0x100;
    driver.returnPc = 0x1fc;
    driver.body = std::move(body);
    prog.addFunction(std::move(driver));

    trace::Trace t = prog.run("chain", 6, 1);
    // Each invocation emits exactly: arm0 not-taken, arm1 taken.
    ASSERT_EQ(t.size(), 6u);
    for (size_t i = 0; i < t.size(); i += 2) {
        EXPECT_EQ(t[i].pc, 0x100u);
        EXPECT_FALSE(t[i].taken);
        EXPECT_EQ(t[i + 1].pc, 0x104u);
        EXPECT_TRUE(t[i + 1].taken);
    }
}

TEST(ProgramModel, CallEmitsCallAndReturnRecords)
{
    Program prog;
    prog.addCondition(ConditionSpec::biased(1.0));

    // Callee: a single If.
    auto callee_body = std::make_unique<BlockStmt>();
    callee_body->append(
        std::make_unique<IfStmt>(0x200, Pred::var(0), nullptr, nullptr));
    Function callee;
    callee.entryPc = 0x200;
    callee.returnPc = 0x2fc;
    callee.body = std::move(callee_body);

    auto driver_body = std::make_unique<BlockStmt>();
    driver_body->append(std::make_unique<CallStmt>(0x100, 1));
    Function driver;
    driver.entryPc = 0x100;
    driver.returnPc = 0x1fc;
    driver.body = std::move(driver_body);

    prog.addFunction(std::move(driver));
    prog.addFunction(std::move(callee));

    trace::Trace t = prog.run("call", 2, 1);
    // Pattern per invocation: call, cond, ret.
    ASSERT_GE(t.size(), 3u);
    EXPECT_EQ(t[0].kind, BranchKind::Call);
    EXPECT_EQ(t[0].target, 0x200u);
    EXPECT_EQ(t[1].kind, BranchKind::Conditional);
    EXPECT_EQ(t[2].kind, BranchKind::Return);
}

TEST(ProgramModel, RecursionDepthIsBounded)
{
    // Function 1 calls itself unconditionally; the depth cap must stop
    // the recursion and the budget must still be reachable via the If.
    Program prog;
    prog.addCondition(ConditionSpec::biased(0.5));

    auto rec_body = std::make_unique<BlockStmt>();
    rec_body->append(
        std::make_unique<IfStmt>(0x204, Pred::var(0), nullptr, nullptr));
    rec_body->append(std::make_unique<CallStmt>(0x208, 1));
    Function rec;
    rec.entryPc = 0x200;
    rec.returnPc = 0x2fc;
    rec.body = std::move(rec_body);

    auto driver_body = std::make_unique<BlockStmt>();
    driver_body->append(std::make_unique<SampleStmt>(0));
    driver_body->append(std::make_unique<CallStmt>(0x100, 1));
    Function driver;
    driver.entryPc = 0x100;
    driver.returnPc = 0x1fc;
    driver.body = std::move(driver_body);

    prog.addFunction(std::move(driver));
    prog.addFunction(std::move(rec));

    trace::Trace t = prog.run("rec", 100, 3);
    EXPECT_EQ(t.conditionalCount(), 100u);
}

TEST(ProgramModel, AssignCreatesOutcomeCorrelation)
{
    // Fig. 1b: branch Y taken => var 1 set true; branch X tests var 1.
    Program prog;
    prog.addCondition(ConditionSpec::biased(0.5)); // var 0 drives Y
    prog.addCondition(ConditionSpec::biased(0.5)); // var 1, overwritten

    auto then_block = std::make_unique<BlockStmt>();
    then_block->append(std::make_unique<AssignStmt>(1, 1.0));
    auto else_block = std::make_unique<BlockStmt>();
    else_block->append(std::make_unique<AssignStmt>(1, 0.0));

    auto body = std::make_unique<BlockStmt>();
    body->append(std::make_unique<SampleStmt>(0));
    body->append(std::make_unique<IfStmt>(0x100, Pred::var(0),
                                          std::move(then_block),
                                          std::move(else_block)));
    body->append(
        std::make_unique<IfStmt>(0x120, Pred::var(1), nullptr, nullptr));
    Function driver;
    driver.entryPc = 0x100;
    driver.returnPc = 0x1fc;
    driver.body = std::move(body);
    prog.addFunction(std::move(driver));

    trace::Trace t = prog.run("fig1b", 200, 5);
    // Records alternate Y, X; X's outcome must equal Y's.
    for (size_t i = 0; i + 1 < t.size(); i += 2) {
        ASSERT_EQ(t[i].pc, 0x100u);
        ASSERT_EQ(t[i + 1].pc, 0x120u);
        EXPECT_EQ(t[i].taken, t[i + 1].taken);
    }
}

TEST(TripState, FixedAlwaysSame)
{
    TripState st(TripSpec::fixed(7), Rng(1));
    for (int i = 0; i < 20; ++i)
        EXPECT_EQ(st.next(), 7u);
}

TEST(TripState, UniformStaysInRange)
{
    TripState st(TripSpec::uniform(3, 9), Rng(2));
    for (int i = 0; i < 200; ++i) {
        uint32_t v = st.next();
        ASSERT_GE(v, 3u);
        ASSERT_LE(v, 9u);
    }
}

TEST(TripState, DriftChangesInfrequentlyAndStaysInRange)
{
    TripState st(TripSpec::drift(4, 8, 10), Rng(3));
    uint32_t prev = st.next();
    int changes = 0;
    for (int i = 1; i < 500; ++i) {
        uint32_t v = st.next();
        ASSERT_GE(v, 4u);
        ASSERT_LE(v, 8u);
        ASSERT_LE(static_cast<int>(v) - static_cast<int>(prev), 1);
        ASSERT_GE(static_cast<int>(v) - static_cast<int>(prev), -1);
        if (v != prev)
            ++changes;
        prev = v;
    }
    // With period 10, at most ~50 of 500 steps can change.
    EXPECT_LE(changes, 50);
    EXPECT_GT(changes, 0);
}

TEST(ProgramModelDeath, EmptyProgramPanics)
{
    Program prog;
    EXPECT_DEATH(prog.run("x", 10, 1), "no functions");
}

TEST(ProgramModelDeath, NonEmittingDriverPanics)
{
    Program prog;
    prog.addCondition(ConditionSpec::biased(0.5));
    auto body = std::make_unique<BlockStmt>();
    body->append(std::make_unique<SampleStmt>(0));
    Function driver;
    driver.entryPc = 0x100;
    driver.returnPc = 0x1fc;
    driver.body = std::move(body);
    prog.addFunction(std::move(driver));
    EXPECT_DEATH(prog.run("x", 10, 1), "");
}

} // namespace
} // namespace copra::workload
