/**
 * @file
 * Unit tests for correlation candidate mining and information-gain
 * scoring (the first phase of the selective-history oracle).
 */

#include <gtest/gtest.h>

#include "core/candidates.hpp"
#include "util/rng.hpp"
#include "workload/patterns.hpp"

namespace copra::core {
namespace {

TEST(InformationGain, PerfectCorrelationGivesFullEntropy)
{
    BranchCandidates branch;
    branch.execsTaken = 500;
    branch.execsNotTaken = 500;
    Contingency tag;
    tag.present[1][1] = 500; // tag taken -> branch taken
    tag.present[0][0] = 500; // tag not taken -> branch not taken
    EXPECT_NEAR(CandidateMiner::informationGain(branch, tag), 1.0, 1e-9);
}

TEST(InformationGain, IndependenceGivesZero)
{
    BranchCandidates branch;
    branch.execsTaken = 400;
    branch.execsNotTaken = 400;
    Contingency tag;
    tag.present[1][1] = 200;
    tag.present[1][0] = 200;
    tag.present[0][1] = 200;
    tag.present[0][0] = 200;
    EXPECT_NEAR(CandidateMiner::informationGain(branch, tag), 0.0, 1e-9);
}

TEST(InformationGain, NotInPathStateCarriesInformation)
{
    // The tag is present in half the executions; presence alone
    // determines the branch (paper Fig. 2 in-path correlation).
    BranchCandidates branch;
    branch.execsTaken = 300;
    branch.execsNotTaken = 300;
    Contingency tag;
    tag.present[1][1] = 150; // when present (either direction): taken
    tag.present[0][1] = 150;
    // Absent executions (300) are all not-taken: derived internally.
    EXPECT_NEAR(CandidateMiner::informationGain(branch, tag), 1.0, 1e-9);
}

TEST(InformationGain, BiasedBranchHasLittleToGain)
{
    BranchCandidates branch;
    branch.execsTaken = 990;
    branch.execsNotTaken = 10;
    Contingency tag;
    tag.present[1][1] = 495;
    tag.present[0][1] = 495;
    tag.present[1][0] = 5;
    tag.present[0][0] = 5;
    EXPECT_LT(CandidateMiner::informationGain(branch, tag), 0.1);
}

TEST(CandidateMiner, FindsThePerfectCorrelationCandidate)
{
    auto trace = workload::correlatedPairTrace(0x100, 0x200, 0.5, 1.0,
                                               5000, 3);
    CandidateMiner miner(16);
    miner.mine(trace);

    auto top = miner.topCandidates(0x200, 3);
    ASSERT_FALSE(top.empty());
    // The best candidate must be the most recent instance of Y.
    EXPECT_EQ(top[0].tag.pc(), 0x100u);
    EXPECT_EQ(top[0].tag.num(), 0u);
    EXPECT_GT(top[0].gain, 0.9);
}

TEST(CandidateMiner, IndependentBranchesScoreNearZero)
{
    auto a = workload::biasedTrace(0x100, 0.5, 4000, 1);
    auto b = workload::biasedTrace(0x200, 0.5, 4000, 2);
    auto trace = workload::interleave({a, b});
    CandidateMiner miner(8);
    miner.mine(trace);
    for (const auto &cand : miner.topCandidates(0x200, 5))
        EXPECT_LT(cand.gain, 0.05);
}

TEST(CandidateMiner, TracksExecutionTotals)
{
    auto trace = workload::biasedTrace(0x100, 0.75, 1000, 9);
    CandidateMiner miner(8);
    miner.mine(trace);
    const BranchCandidates *bc = miner.branch(0x100);
    ASSERT_NE(bc, nullptr);
    EXPECT_EQ(bc->execs(), 1000u);
    EXPECT_NEAR(static_cast<double>(bc->execsTaken) / bc->execs(), 0.75,
                0.05);
    EXPECT_EQ(miner.branch(0x999), nullptr);
}

TEST(CandidateMiner, PrefixLimitsMining)
{
    auto trace = workload::biasedTrace(0x100, 0.5, 1000, 9);
    CandidateMiner miner(8);
    miner.mine(trace, 100);
    EXPECT_EQ(miner.branch(0x100)->execs(), 100u);
}

TEST(CandidateMiner, PerBranchCapStopsNewTags)
{
    // Many distinct predecessor branches, tiny cap.
    trace::Trace t("many");
    Rng rng(4);
    for (int i = 0; i < 3000; ++i) {
        uint64_t pred_pc = 0x1000 + 4 * (i % 500);
        t.append({pred_pc, pred_pc + 64, trace::BranchKind::Conditional,
                  rng.bernoulli(0.5)});
        t.append({0x100, 0x180, trace::BranchKind::Conditional,
                  rng.bernoulli(0.5)});
    }
    CandidateMiner miner(8, 16);
    miner.mine(t);
    const BranchCandidates *bc = miner.branch(0x100);
    ASSERT_NE(bc, nullptr);
    EXPECT_LE(bc->tags.size(), 16u);
    EXPECT_TRUE(bc->capped);
}

TEST(CandidateMiner, ScoresAreDeterministicallyOrdered)
{
    auto trace = workload::correlatedPairTrace(0x100, 0x200, 0.5, 0.8,
                                               3000, 5);
    CandidateMiner a(16), b(16);
    a.mine(trace);
    b.mine(trace);
    auto ta = a.topCandidates(0x200, 8);
    auto tb = b.topCandidates(0x200, 8);
    ASSERT_EQ(ta.size(), tb.size());
    for (size_t i = 0; i < ta.size(); ++i) {
        EXPECT_EQ(ta[i].tag, tb[i].tag);
        EXPECT_DOUBLE_EQ(ta[i].gain, tb[i].gain);
    }
    // Descending gain.
    for (size_t i = 1; i < ta.size(); ++i)
        EXPECT_LE(ta[i].gain, ta[i - 1].gain);
}

TEST(CandidateMiner, InPathCandidateIsMined)
{
    // Fig. 2: branch V's presence in the path predicts X. The miner
    // must surface a V tag among X's top candidates.
    auto trace = workload::inPathTrace(0x100, 0.5, 0.5, 0.5, 10000, 7);
    CandidateMiner miner(16);
    miner.mine(trace);
    auto top = miner.topCandidates(0x140, 4);
    bool found_v = false;
    for (const auto &cand : top)
        if (cand.tag.pc() == 0x108)
            found_v = true;
    EXPECT_TRUE(found_v);
}

TEST(CandidateMinerDeath, MiningTwiceIsABug)
{
    auto trace = workload::biasedTrace(0x100, 0.5, 10, 1);
    CandidateMiner miner(8);
    miner.mine(trace);
    EXPECT_DEATH(miner.mine(trace), "twice");
}

} // namespace
} // namespace copra::core
