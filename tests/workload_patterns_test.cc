/**
 * @file
 * Unit tests for the crafted pattern trace generators.
 */

#include <gtest/gtest.h>

#include "trace/trace_stats.hpp"
#include "workload/patterns.hpp"

namespace copra::workload {
namespace {

TEST(Patterns, LoopTraceIsForType)
{
    trace::Trace t = loopTrace(0x200, 4, 3);
    ASSERT_EQ(t.size(), 12u);
    for (uint32_t inv = 0; inv < 3; ++inv) {
        EXPECT_TRUE(t[inv * 4 + 0].taken);
        EXPECT_TRUE(t[inv * 4 + 1].taken);
        EXPECT_TRUE(t[inv * 4 + 2].taken);
        EXPECT_FALSE(t[inv * 4 + 3].taken);
    }
    EXPECT_TRUE(t[0].isBackward());
}

TEST(Patterns, LoopTraceTripOneIsAlwaysNotTaken)
{
    trace::Trace t = loopTrace(0x200, 1, 5);
    ASSERT_EQ(t.size(), 5u);
    for (size_t i = 0; i < t.size(); ++i)
        EXPECT_FALSE(t[i].taken);
}

TEST(Patterns, WhileTraceIsWhileType)
{
    trace::Trace t = whileTrace(0x100, 3, 2);
    ASSERT_EQ(t.size(), 8u);
    bool expected[] = {false, false, false, true};
    for (size_t i = 0; i < t.size(); ++i)
        EXPECT_EQ(t[i].taken, expected[i % 4]) << i;
    EXPECT_FALSE(t[0].isBackward()); // exit branch is forward
}

TEST(Patterns, PeriodicTraceCycles)
{
    trace::Trace t = periodicTrace(0x100, {true, false, false}, 4);
    ASSERT_EQ(t.size(), 12u);
    for (size_t i = 0; i < t.size(); ++i)
        EXPECT_EQ(t[i].taken, i % 3 == 0) << i;
}

TEST(Patterns, BlockPatternAlternatesRuns)
{
    trace::Trace t = blockPatternTrace(0x100, 2, 3, 2);
    ASSERT_EQ(t.size(), 10u);
    bool expected[] = {true, true, false, false, false};
    for (size_t i = 0; i < t.size(); ++i)
        EXPECT_EQ(t[i].taken, expected[i % 5]) << i;
}

TEST(Patterns, BiasedTraceApproximatesP)
{
    trace::Trace t = biasedTrace(0x100, 0.8, 20000, 7);
    trace::TraceStats stats(t);
    EXPECT_NEAR(stats.branch(0x100).takenRate(), 0.8, 0.02);
}

TEST(Patterns, CorrelatedPairImpliesX)
{
    trace::Trace t = correlatedPairTrace(0x100, 0x200, 0.5, 0.5, 1000, 3);
    ASSERT_EQ(t.size(), 2000u);
    for (size_t i = 0; i < t.size(); i += 2) {
        ASSERT_EQ(t[i].pc, 0x100u);
        ASSERT_EQ(t[i + 1].pc, 0x200u);
        // X = cond1 AND cond2, so Y not-taken forces X not-taken.
        if (!t[i].taken)
            EXPECT_FALSE(t[i + 1].taken);
    }
}

TEST(Patterns, InPathTraceReachingArmVImpliesXTaken)
{
    trace::Trace t = inPathTrace(0x100, 0.5, 0.5, 0.5, 2000, 11);
    // Scan: whenever pc_v (base+8) appears, the following branch X
    // (base+64) must be taken — the paper's Fig. 2 property.
    for (size_t i = 0; i + 1 < t.size(); ++i) {
        if (t[i].pc == 0x108) {
            ASSERT_EQ(t[i + 1].pc, 0x140u);
            EXPECT_TRUE(t[i + 1].taken);
        }
    }
    // And X must appear exactly once per iteration.
    uint64_t x_count = 0;
    for (size_t i = 0; i < t.size(); ++i)
        if (t[i].pc == 0x140)
            ++x_count;
    EXPECT_EQ(x_count, 2000u);
}

TEST(Patterns, InterleaveRoundRobins)
{
    trace::Trace a = loopTrace(0x100, 2, 2);     // 4 records
    trace::Trace b = periodicTrace(0x200, {true}, 2); // 2 records
    trace::Trace merged = interleave({a, b});
    ASSERT_EQ(merged.size(), 6u);
    EXPECT_EQ(merged[0].pc, 0x100u);
    EXPECT_EQ(merged[1].pc, 0x200u);
    EXPECT_EQ(merged[2].pc, 0x100u);
    EXPECT_EQ(merged[3].pc, 0x200u);
    EXPECT_EQ(merged[4].pc, 0x100u); // a's tail continues alone
    EXPECT_EQ(merged[5].pc, 0x100u);
}

TEST(Patterns, InterleaveOfNothingIsEmpty)
{
    trace::Trace merged = interleave({});
    EXPECT_TRUE(merged.empty());
}

} // namespace
} // namespace copra::workload
