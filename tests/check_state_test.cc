/**
 * @file
 * The state-contract gates (check/state_gates.hpp) under test: the
 * full factory roster must pass every gate, the planted hidden-state
 * bug must be caught by the round-trip (snapshot-completeness) probe
 * specifically, snapshot primitives must panic loudly on malformed
 * input, and the generated STATE_BUDGETS table must cover the roster.
 */

#include <gtest/gtest.h>

#include "check/differential.hpp"
#include "check/state_gates.hpp"
#include "predictor/factory.hpp"
#include "predictor/state.hpp"

using namespace copra;
using namespace copra::check;

TEST(StateGates, WholeRosterPasses)
{
    StateGateOptions options;
    options.seedBase = 11;
    options.traces = 3;
    options.conditionals = 800;
    StateGateReport report = runStateGates(options);
    EXPECT_TRUE(report.ok()) << formatStateGateReport(report);
    // 2 cold gates per spec + 2 per (spec, trace).
    EXPECT_EQ(report.gatesRun, defaultStateRoster().size() * (2 + 2 * 3));
}

TEST(StateGates, ShadowStateBugCaughtByRoundTripOnly)
{
    // The planted bug keeps an allocation ledger outside the registered
    // state fields but clears it in reset(): reset-replay must stay
    // green while the snapshot-completeness probe fails. That split is
    // the point — it proves the round-trip gate detects state the
    // other gates structurally cannot.
    CheckPair pair = injectedBugPair(InjectedBug::TageShadowState);
    StateGateOptions options;
    options.seedBase = 1;
    options.traces = 6;
    options.conditionals = 1500;
    StateGateReport report =
        runStateGates(options, {{pair.name, pair.optimized}});
    ASSERT_FALSE(report.ok());
    for (const StateGateFailure &failure : report.failures)
        EXPECT_EQ(failure.gate, "round-trip") << failure.detail;
}

TEST(StateReader, PastEndReadPanics)
{
    EXPECT_DEATH(
        {
            predictor::state::Reader reader(
                std::span<const uint8_t>{});
            reader.u8();
        },
        "read past the end of a snapshot");
}

TEST(StateRestore, GeometryMismatchPanics)
{
    // Restoring a snapshot into a predictor of a different geometry is
    // a caller bug; the size-prefix tripwire must refuse it loudly
    // rather than silently smearing bytes across the wrong tables.
    predictor::PredictorPtr small = predictor::makePredictor("gshare:h=6");
    std::vector<uint8_t> snap = small->snapshot();
    predictor::PredictorPtr big = predictor::makePredictor("gshare:h=8");
    EXPECT_DEATH(big->restore(snap), "geometry mismatch");
}

TEST(StateBudgets, TableCoversEveryKnownPredictor)
{
    std::string doc = renderStateBudgets();
    for (const std::string &spec : predictor::knownPredictors())
        EXPECT_NE(doc.find("| " + spec + " |"), std::string::npos)
            << "STATE_BUDGETS table is missing spec '" << spec << "'";
}
