/**
 * @file
 * Unit tests for saturating counters and history registers.
 */

#include <gtest/gtest.h>

#include "util/sat_counter.hpp"
#include "util/shift_register.hpp"

namespace copra {
namespace {

TEST(SatCounter, DefaultIsTwoBitWeaklyNotTaken)
{
    SatCounter c;
    EXPECT_EQ(c.bits(), 2u);
    EXPECT_EQ(c.value(), 1u);
    EXPECT_EQ(c.maxValue(), 3u);
    EXPECT_FALSE(c.taken());
}

TEST(SatCounter, IncrementSaturatesAtMax)
{
    SatCounter c(2, 2);
    c.increment();
    EXPECT_EQ(c.value(), 3u);
    c.increment();
    EXPECT_EQ(c.value(), 3u);
    EXPECT_TRUE(c.saturated());
}

TEST(SatCounter, DecrementSaturatesAtZero)
{
    SatCounter c(2, 1);
    c.decrement();
    EXPECT_EQ(c.value(), 0u);
    c.decrement();
    EXPECT_EQ(c.value(), 0u);
    EXPECT_TRUE(c.saturated());
}

TEST(SatCounter, TakenThresholdIsMsb)
{
    SatCounter c(3, 0); // 3-bit counter: taken at >= 4
    EXPECT_FALSE(c.taken());
    c.set(3);
    EXPECT_FALSE(c.taken());
    c.set(4);
    EXPECT_TRUE(c.taken());
    c.set(7);
    EXPECT_TRUE(c.taken());
}

TEST(SatCounter, UpdateMovesTowardOutcome)
{
    SatCounter c(2, 1);
    c.update(true);
    EXPECT_EQ(c.value(), 2u);
    c.update(false);
    c.update(false);
    EXPECT_EQ(c.value(), 0u);
}

TEST(SatCounter, EqualityComparesWidthAndValue)
{
    EXPECT_EQ(SatCounter(2, 1), SatCounter(2, 1));
    EXPECT_FALSE(SatCounter(2, 1) == SatCounter(2, 2));
    EXPECT_FALSE(SatCounter(3, 1) == SatCounter(2, 1));
}

class SatCounterWidth : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(SatCounterWidth, FullRangeWalk)
{
    unsigned bits = GetParam();
    SatCounter c(bits, 0);
    unsigned max = (1u << bits) - 1;
    for (unsigned i = 0; i < max; ++i)
        c.increment();
    EXPECT_EQ(c.value(), max);
    c.increment();
    EXPECT_EQ(c.value(), max);
    for (unsigned i = 0; i < max; ++i)
        c.decrement();
    EXPECT_EQ(c.value(), 0u);
    // The counter predicts taken for exactly the upper half of its range.
    unsigned taken_states = 0;
    for (unsigned v = 0; v <= max; ++v) {
        c.set(static_cast<uint8_t>(v));
        if (c.taken())
            ++taken_states;
    }
    EXPECT_EQ(taken_states, (max + 1) / 2);
}

INSTANTIATE_TEST_SUITE_P(Widths, SatCounterWidth,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 8u));

TEST(Counter2, StateMachineMatchesSmith1981)
{
    Counter2 c; // weakly not taken
    EXPECT_EQ(c.v, 1);
    EXPECT_FALSE(c.taken());
    c.update(true);
    EXPECT_TRUE(c.taken()); // weakly taken
    c.update(true);
    EXPECT_EQ(c.v, 3); // strongly taken
    c.update(true);
    EXPECT_EQ(c.v, 3); // saturates
    c.update(false);
    EXPECT_TRUE(c.taken()); // hysteresis: still predicts taken
    c.update(false);
    EXPECT_FALSE(c.taken());
    c.update(false);
    c.update(false);
    EXPECT_EQ(c.v, 0); // saturates at zero
}

TEST(HistoryRegister, PushShiftsNewestIntoBitZero)
{
    HistoryRegister h(4);
    h.push(true);
    h.push(false);
    h.push(true);
    // Sequence T N T => bits (oldest..newest) 1,0,1 => value 0b101.
    EXPECT_EQ(h.value(), 0b101u);
    EXPECT_TRUE(h.outcome(0));
    EXPECT_FALSE(h.outcome(1));
    EXPECT_TRUE(h.outcome(2));
}

TEST(HistoryRegister, LengthMasksOldOutcomes)
{
    HistoryRegister h(3);
    for (int i = 0; i < 10; ++i)
        h.push(true);
    EXPECT_EQ(h.value(), 0b111u);
    h.push(false);
    EXPECT_EQ(h.value(), 0b110u);
}

TEST(HistoryRegister, ClearForgetsEverything)
{
    HistoryRegister h(8);
    h.push(true);
    h.push(true);
    h.clear();
    EXPECT_EQ(h.value(), 0u);
}

TEST(HistoryRegister, SixtyFourBitHistoryWorks)
{
    HistoryRegister h(64);
    for (int i = 0; i < 64; ++i)
        h.push(true);
    EXPECT_EQ(h.value(), ~uint64_t(0));
    h.push(false);
    EXPECT_EQ(h.value(), ~uint64_t(0) << 1);
}

class HistoryLengths : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(HistoryLengths, MaskMatchesLength)
{
    unsigned len = GetParam();
    HistoryRegister h(len);
    for (unsigned i = 0; i < 100; ++i)
        h.push(true);
    if (len >= 64) {
        EXPECT_EQ(h.value(), ~uint64_t(0));
    } else {
        EXPECT_EQ(h.value(), (uint64_t(1) << len) - 1);
    }
}

INSTANTIATE_TEST_SUITE_P(PaperLengths, HistoryLengths,
                         ::testing::Values(1u, 8u, 12u, 16u, 20u, 24u, 28u,
                                           32u, 63u, 64u));

TEST(PathRegister, RecordsSuccessiveAddressPieces)
{
    PathRegister p(4, 2);
    p.push(0x100); // (0x100 >> 2) & 3 = 0
    p.push(0x104); // 1
    p.push(0x108); // 2
    p.push(0x10c); // 3
    EXPECT_EQ(p.value(), 0b00011011u);
    EXPECT_EQ(p.width(), 8u);
}

TEST(PathRegister, OldEntriesShiftOut)
{
    PathRegister p(2, 2);
    p.push(0x104); // 1
    p.push(0x108); // 2
    p.push(0x10c); // 3
    EXPECT_EQ(p.value(), 0b1011u); // only the last two remain
}

TEST(PathRegister, DistinguishesPathsWithSameOutcomePattern)
{
    // Two different branch addresses leading to the same point must
    // produce different path values — the property outcome histories
    // lack (paper §3.1, in-path correlation).
    PathRegister a(4, 4);
    PathRegister b(4, 4);
    a.push(0x104);
    b.push(0x108);
    EXPECT_NE(a.value(), b.value());
}

TEST(PathRegister, ClearResets)
{
    PathRegister p(4, 2);
    p.push(0xabc);
    p.clear();
    EXPECT_EQ(p.value(), 0u);
}

} // namespace
} // namespace copra
