/**
 * @file
 * Unit tests for condition sources and predicate expressions.
 */

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"
#include "workload/condition.hpp"
#include "workload/expr.hpp"

namespace copra::workload {
namespace {

TEST(ConditionSource, BiasedFrequencyTracksP)
{
    for (double p : {0.05, 0.5, 0.97}) {
        ConditionSource src(ConditionSpec::biased(p), Rng(123));
        int hits = 0;
        const int n = 20000;
        for (int i = 0; i < n; ++i)
            if (src.next())
                ++hits;
        EXPECT_NEAR(static_cast<double>(hits) / n, p, 0.02) << "p=" << p;
    }
}

TEST(ConditionSource, PeriodicCyclesExactly)
{
    // Pattern 0b011 of length 3: true, true, false repeating.
    ConditionSource src(ConditionSpec::periodic(0b011, 3), Rng(1));
    for (int rep = 0; rep < 5; ++rep) {
        EXPECT_TRUE(src.next());
        EXPECT_TRUE(src.next());
        EXPECT_FALSE(src.next());
    }
    EXPECT_EQ(src.samples(), 15u);
}

TEST(ConditionSource, MarkovIsSticky)
{
    ConditionSource src(ConditionSpec::markov(0.95, 0.05), Rng(7));
    int flips = 0;
    bool prev = src.next();
    const int n = 20000;
    for (int i = 1; i < n; ++i) {
        bool cur = src.next();
        if (cur != prev)
            ++flips;
        prev = cur;
    }
    // Flip probability is ~5% per step in either state.
    EXPECT_NEAR(static_cast<double>(flips) / n, 0.05, 0.01);
}

TEST(ConditionSource, Markov2MarginalIsBalanced)
{
    // The order-2 chain is symmetric (P(true|differ) = 1 - P(true|equal)),
    // so the marginal distribution stays near 50/50.
    ConditionSource src(ConditionSpec::markov2(0.8), Rng(11));
    int trues = 0;
    const int n = 40000;
    for (int i = 0; i < n; ++i)
        if (src.next())
            ++trues;
    EXPECT_NEAR(static_cast<double>(trues) / n, 0.5, 0.02);
}

TEST(ConditionSource, Markov2IsOrderTwoPredictable)
{
    // Conditioning on the last TWO values predicts ~80%; conditioning on
    // the last value alone is uninformative. This is the generator of
    // the paper's non-repeating-pattern class.
    ConditionSource src(ConditionSpec::markov2(0.8), Rng(13));
    bool prev2 = src.next();
    bool prev1 = src.next();
    int order2_hits = 0, order1_same = 0;
    const int n = 40000;
    for (int i = 0; i < n; ++i) {
        bool cur = src.next();
        // Order-2 rule: after differing values expect true, else false.
        bool predicted = prev1 != prev2;
        if (cur == predicted)
            ++order2_hits;
        if (cur == prev1)
            ++order1_same;
        prev2 = prev1;
        prev1 = cur;
    }
    EXPECT_NEAR(static_cast<double>(order2_hits) / n, 0.8, 0.02);
    EXPECT_NEAR(static_cast<double>(order1_same) / n, 0.5, 0.03);
}

TEST(ConditionSource, Markov2HasNoShortPeriod)
{
    // Unlike periodic sources, the noisy order-2 chain must not repeat
    // with any short fixed period: "same as k ago" stays near chance
    // for every k in the fixed-pattern predictor's range.
    ConditionSource src(ConditionSpec::markov2(0.8), Rng(17));
    std::vector<bool> seq;
    for (int i = 0; i < 20000; ++i)
        seq.push_back(src.next());
    for (unsigned k : {3u, 5u, 8u, 13u, 21u, 32u}) {
        int same = 0;
        for (size_t i = k; i < seq.size(); ++i)
            if (seq[i] == seq[i - k])
                ++same;
        double rate = static_cast<double>(same)
            / static_cast<double>(seq.size() - k);
        EXPECT_LT(rate, 0.70) << "k=" << k;
    }
}

TEST(ConditionSource, CounterIsDeterministic)
{
    ConditionSource src(ConditionSpec::counter(4, 2), Rng(9));
    // (count % 4) < 2: T T F F repeating.
    for (int rep = 0; rep < 4; ++rep) {
        EXPECT_TRUE(src.next());
        EXPECT_TRUE(src.next());
        EXPECT_FALSE(src.next());
        EXPECT_FALSE(src.next());
    }
}

TEST(ConditionSource, SameRngSameStream)
{
    ConditionSource a(ConditionSpec::biased(0.4), Rng(55));
    ConditionSource b(ConditionSpec::biased(0.4), Rng(55));
    for (int i = 0; i < 100; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(ConditionSpec, DescribeMentionsKind)
{
    EXPECT_NE(ConditionSpec::biased(0.9).describe().find("biased"),
              std::string::npos);
    EXPECT_NE(ConditionSpec::periodic(1, 2).describe().find("periodic"),
              std::string::npos);
    EXPECT_NE(ConditionSpec::markov(0.9, 0.1).describe().find("markov"),
              std::string::npos);
    EXPECT_NE(ConditionSpec::counter(4, 1).describe().find("counter"),
              std::string::npos);
}

TEST(Pred, VariableEvaluation)
{
    std::vector<uint8_t> vars = {1, 0};
    EXPECT_TRUE(Pred::var(0).eval(vars));
    EXPECT_FALSE(Pred::var(1).eval(vars));
}

TEST(Pred, NotAndOr)
{
    std::vector<uint8_t> vars = {1, 0};
    Pred v0 = Pred::var(0);
    Pred v1 = Pred::var(1);
    EXPECT_FALSE(Pred::notOf(v0).eval(vars));
    EXPECT_TRUE(Pred::notOf(v1).eval(vars));
    EXPECT_FALSE(Pred::andOf(v0, v1).eval(vars));
    EXPECT_TRUE(Pred::orOf(v0, v1).eval(vars));
}

TEST(Pred, CompoundExpressionTruthTable)
{
    // (v0 & !v1) | v2
    Pred expr = Pred::orOf(
        Pred::andOf(Pred::var(0), Pred::notOf(Pred::var(1))),
        Pred::var(2));
    for (int bits = 0; bits < 8; ++bits) {
        std::vector<uint8_t> vars = {
            static_cast<uint8_t>(bits & 1),
            static_cast<uint8_t>((bits >> 1) & 1),
            static_cast<uint8_t>((bits >> 2) & 1),
        };
        bool expected = (vars[0] && !vars[1]) || vars[2];
        EXPECT_EQ(expr.eval(vars), expected) << "bits=" << bits;
    }
}

TEST(Pred, VariablesAreSortedAndDeduplicated)
{
    Pred expr = Pred::andOf(Pred::orOf(Pred::var(5), Pred::var(2)),
                            Pred::var(5));
    auto vars = expr.variables();
    ASSERT_EQ(vars.size(), 2u);
    EXPECT_EQ(vars[0], 2u);
    EXPECT_EQ(vars[1], 5u);
}

TEST(Pred, ToStringIsReadable)
{
    Pred expr = Pred::andOf(Pred::var(1), Pred::notOf(Pred::var(2)));
    EXPECT_EQ(expr.toString(), "(v1 & !v2)");
}

TEST(Pred, SizeCountsNodes)
{
    EXPECT_EQ(Pred::var(0).size(), 1u);
    EXPECT_EQ(Pred::andOf(Pred::var(0), Pred::var(1)).size(), 3u);
}

} // namespace
} // namespace copra::workload
