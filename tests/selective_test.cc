/**
 * @file
 * Unit tests for the 3-valued selective-history machinery and the online
 * selective predictor (paper §3.4).
 */

#include <gtest/gtest.h>

#include "core/selective.hpp"
#include "sim/driver.hpp"
#include "util/rng.hpp"
#include "workload/patterns.hpp"

namespace copra::core {
namespace {

using trace::BranchKind;
using trace::BranchRecord;

TEST(Pow3, Values)
{
    EXPECT_EQ(pow3(0), 1u);
    EXPECT_EQ(pow3(1), 3u);
    EXPECT_EQ(pow3(2), 9u);
    EXPECT_EQ(pow3(3), 27u);
    EXPECT_EQ(pow3(8), 6561u);
}

TEST(StateOf, ThreeValuedEncoding)
{
    std::vector<TagState> collected = {
        {Tag(0x100, TagMethod::Occurrence, 0), true},
        {Tag(0x104, TagMethod::Occurrence, 0), false},
    };
    EXPECT_EQ(stateOf(collected, Tag(0x100, TagMethod::Occurrence, 0)),
              TagOutcome::Taken);
    EXPECT_EQ(stateOf(collected, Tag(0x104, TagMethod::Occurrence, 0)),
              TagOutcome::NotTaken);
    EXPECT_EQ(stateOf(collected, Tag(0x999, TagMethod::Occurrence, 0)),
              TagOutcome::NotInPath);
}

TEST(SelectiveTable, PatternIsRadixThree)
{
    TagOutcome states[3] = {TagOutcome::Taken, TagOutcome::NotInPath,
                            TagOutcome::NotTaken};
    // 2*1 + 0*3 + 1*9 = 11.
    EXPECT_EQ(SelectiveTable::patternOf(states, 3), 11u);
    EXPECT_EQ(SelectiveTable::patternOf(states, 1), 2u);
}

TEST(SelectiveTable, TrainsPerPattern)
{
    SelectiveTable table(1);
    EXPECT_FALSE(table.predict(0)); // weakly not taken initially
    table.update(0, true);
    EXPECT_TRUE(table.predict(0));
    // Other patterns unaffected.
    EXPECT_FALSE(table.predict(1));
    EXPECT_FALSE(table.predict(2));
}

TEST(SelectiveTableDeath, ArityAndPatternBounds)
{
    EXPECT_DEATH(SelectiveTable(0), "arity");
    EXPECT_DEATH(SelectiveTable(9), "arity");
    SelectiveTable table(1);
    EXPECT_DEATH(table.predict(3), "out of range");
}

TEST(SelectivePredictor, ExploitsPerfectCorrelation)
{
    // X copies Y exactly (p2 = 1.0). Watching Y0 makes X near-perfectly
    // predictable even though Y itself is a coin flip.
    auto trace = workload::correlatedPairTrace(0x100, 0x200, 0.5, 1.0,
                                               5000, 7);
    std::unordered_map<uint64_t, std::vector<Tag>> selections;
    selections[0x200] = {Tag(0x100, TagMethod::Occurrence, 0)};

    SelectivePredictor pred(std::move(selections), 16);
    sim::Ledger ledger;
    sim::run(trace, pred, &ledger);
    EXPECT_GT(100.0 * ledger.branch(0x200).accuracy(), 99.0);
    // Y itself falls back to a bare counter: ~50%.
    EXPECT_LT(100.0 * ledger.branch(0x100).accuracy(), 60.0);
}

TEST(SelectivePredictor, PartialCorrelationBeatsBias)
{
    // X = cond1 AND cond2 with p1 = 0.5, p2 = 0.9: X is taken 45% of
    // the time (static ceiling 55%), but knowing Y splits it into a
    // certain half (Y not taken => X not taken) and a 90% half
    // (Y taken => X = cond2): ceiling 95%.
    auto trace = workload::correlatedPairTrace(0x100, 0x200, 0.5, 0.9,
                                               20000, 11);
    std::unordered_map<uint64_t, std::vector<Tag>> selections;
    selections[0x200] = {Tag(0x100, TagMethod::Occurrence, 0)};

    SelectivePredictor pred(std::move(selections), 16);
    sim::Ledger ledger;
    sim::run(trace, pred, &ledger);
    double acc = 100.0 * ledger.branch(0x200).accuracy();
    EXPECT_GT(acc, 90.0);
    EXPECT_LT(acc, 97.0);
}

TEST(SelectivePredictor, UnselectedBranchDegeneratesToCounter)
{
    auto trace = workload::biasedTrace(0x300, 0.95, 2000, 5);
    SelectivePredictor pred({}, 16);
    auto result = sim::run(trace, pred);
    EXPECT_GT(result.accuracyPercent(), 90.0);
}

TEST(SelectivePredictor, NotInPathStateIsInformative)
{
    // Branch V appears in the path only when X will be taken (the
    // paper's Fig. 2 in-path correlation). Watching V alone — mostly
    // through its *absence* — must beat X's bias.
    auto trace = workload::inPathTrace(0x100, 0.5, 0.5, 0.5, 20000, 13);
    std::unordered_map<uint64_t, std::vector<Tag>> selections;
    // pc_v = base + 8; X = base + 64. The backward-count tag (method B,
    // instance 0) means "V executed in the current iteration", which is
    // exactly the in-path signal; an occurrence tag would also match
    // stale V instances from earlier iterations still in the window.
    selections[0x140] = {Tag(0x108, TagMethod::BackwardCount, 0)};

    SelectivePredictor pred(std::move(selections), 16);
    sim::Ledger ledger;
    sim::run(trace, pred, &ledger);
    // X = cond1 && cond2 is taken 25% (bias ceiling 75%); V in path
    // implies X taken, V absent implies X very likely not taken:
    // watching V yields 100% when present (25%) and 100% when absent
    // (75%, since V absent <=> X not taken here). Near-perfect.
    EXPECT_GT(100.0 * ledger.branch(0x140).accuracy(), 95.0);
}

TEST(SelectivePredictor, TwoBranchHistoryRefinesOne)
{
    // X = Y1 AND Y2 (independent coins): one watched branch gives
    // ~75-87%, two give ~100%.
    trace::Trace t("and2");
    Rng rng(3);
    for (int i = 0; i < 20000; ++i) {
        bool c1 = rng.bernoulli(0.5);
        bool c2 = rng.bernoulli(0.5);
        t.append({0x100, 0x180, BranchKind::Conditional, c1});
        t.append({0x104, 0x180, BranchKind::Conditional, c2});
        t.append({0x108, 0x180, BranchKind::Conditional, c1 && c2});
    }

    std::unordered_map<uint64_t, std::vector<Tag>> one;
    one[0x108] = {Tag(0x100, TagMethod::Occurrence, 0)};
    SelectivePredictor pred1(std::move(one), 16);
    sim::Ledger ledger1;
    sim::run(t, pred1, &ledger1);

    std::unordered_map<uint64_t, std::vector<Tag>> two;
    two[0x108] = {Tag(0x100, TagMethod::Occurrence, 0),
                  Tag(0x104, TagMethod::Occurrence, 0)};
    SelectivePredictor pred2(std::move(two), 16);
    sim::Ledger ledger2;
    sim::run(t, pred2, &ledger2);

    double acc1 = 100.0 * ledger1.branch(0x108).accuracy();
    double acc2 = 100.0 * ledger2.branch(0x108).accuracy();
    EXPECT_GT(acc2, 99.0);
    EXPECT_GT(acc2, acc1 + 8.0);
}

TEST(SelectivePredictor, ResetForgets)
{
    std::unordered_map<uint64_t, std::vector<Tag>> selections;
    selections[0x200] = {Tag(0x100, TagMethod::Occurrence, 0)};
    SelectivePredictor pred(std::move(selections), 8);
    BranchRecord y{0x100, 0x180, BranchKind::Conditional, true};
    BranchRecord x{0x200, 0x280, BranchKind::Conditional, true};
    for (int i = 0; i < 10; ++i) {
        pred.update(y, true);
        pred.update(x, true);
    }
    EXPECT_TRUE(pred.predict(x));
    pred.reset();
    EXPECT_FALSE(pred.predict(x));
}

TEST(SelectivePredictor, NameMentionsDepth)
{
    SelectivePredictor pred({}, 12);
    EXPECT_EQ(pred.name(), "selective(n=12)");
}

} // namespace
} // namespace copra::core
