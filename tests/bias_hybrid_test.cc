/**
 * @file
 * Unit tests for the branch-classification hybrid (Chang et al., paper
 * §2.2) and the static-PHT two-level predictor (Sechrest / Young et
 * al., paper §2.2).
 */

#include <gtest/gtest.h>

#include "predictor/bias_hybrid.hpp"
#include "predictor/static_pht.hpp"
#include "predictor/two_level.hpp"
#include "sim/driver.hpp"
#include "trace/trace_stats.hpp"
#include "workload/patterns.hpp"
#include "workload/profiles.hpp"

namespace copra::predictor {
namespace {

/** Probe counting how many updates reach the dynamic component. */
class CountingProbe : public Predictor
{
  public:
    bool predict(const trace::BranchRecord &) noexcept override { return true; }
    void update(const trace::BranchRecord &, bool) noexcept override { ++updates; }
    void reset() override { updates = 0; }
    std::string name() const override { return "probe"; }
    int updates = 0;
};

TEST(BiasProfile, ThresholdSplitsBranches)
{
    auto strong = workload::biasedTrace(0x100, 0.99, 2000, 1);
    auto weak = workload::biasedTrace(0x200, 0.6, 2000, 2);
    auto trace = workload::interleave({strong, weak});
    auto profile = BiasClassifyingHybrid::profileTrace(trace, 0.95);
    ASSERT_EQ(profile.size(), 2u);
    EXPECT_TRUE(profile.at(0x100).strongly);
    EXPECT_TRUE(profile.at(0x100).majority);
    EXPECT_FALSE(profile.at(0x200).strongly);
}

TEST(BiasProfile, MajorityDirectionIsPerBranch)
{
    auto taken = workload::biasedTrace(0x100, 0.99, 1000, 1);
    auto not_taken = workload::biasedTrace(0x200, 0.01, 1000, 2);
    auto trace = workload::interleave({taken, not_taken});
    auto profile = BiasClassifyingHybrid::profileTrace(trace, 0.9);
    EXPECT_TRUE(profile.at(0x100).majority);
    EXPECT_FALSE(profile.at(0x200).majority);
}

TEST(BiasHybrid, StronglyBiasedBranchesBypassDynamicComponent)
{
    auto strong = workload::biasedTrace(0x100, 1.0, 1000, 1);
    auto weak = workload::biasedTrace(0x200, 0.6, 1000, 2);
    auto trace = workload::interleave({strong, weak});
    auto profile = BiasClassifyingHybrid::profileTrace(trace, 0.95);

    auto probe = std::make_unique<CountingProbe>();
    CountingProbe *probe_ptr = probe.get();
    BiasClassifyingHybrid hybrid(profile, std::move(probe));
    EXPECT_EQ(hybrid.stronglyBiasedBranches(), 1u);

    sim::run(trace, hybrid);
    // Only the weak branch's 1000 executions reach the component.
    EXPECT_EQ(probe_ptr->updates, 1000);
}

TEST(BiasHybrid, StaticSideIsExactOnItsBranches)
{
    auto strong = workload::biasedTrace(0x100, 0.995, 5000, 3);
    auto profile = BiasClassifyingHybrid::profileTrace(strong, 0.95);
    BiasClassifyingHybrid hybrid(
        profile, std::make_unique<TwoLevel>(TwoLevelConfig::gshare(10)));
    sim::Ledger ledger;
    sim::run(strong, hybrid, &ledger);
    // Static majority prediction: accuracy equals the bias exactly.
    trace::TraceStats stats(strong);
    EXPECT_EQ(ledger.branch(0x100).correct,
              stats.branch(0x100).idealStaticCorrect());
}

TEST(BiasHybrid, ProtectsDynamicTablesFromBiasedNoise)
{
    // A small gshare aliases badly when thousands of biased branches
    // pollute it; classifying them away recovers accuracy on the
    // genuinely dynamic branch.
    std::vector<trace::Trace> parts;
    for (int b = 0; b < 32; ++b) {
        parts.push_back(workload::biasedTrace(
            0x1000 + 4u * static_cast<unsigned>(b),
            b % 2 ? 0.99 : 0.01, 1500, static_cast<uint64_t>(b) + 10));
    }
    parts.push_back(workload::periodicTrace(0x100, {true, true, false},
                                            1500));
    auto trace = workload::interleave(parts);
    auto profile = BiasClassifyingHybrid::profileTrace(trace, 0.95);

    TwoLevel bare(TwoLevelConfig::gshare(6));
    sim::Ledger bare_ledger;
    sim::run(trace, bare, &bare_ledger);

    BiasClassifyingHybrid hybrid(
        profile, std::make_unique<TwoLevel>(TwoLevelConfig::gshare(6)));
    sim::Ledger hybrid_ledger;
    sim::run(trace, hybrid, &hybrid_ledger);

    EXPECT_GT(hybrid_ledger.branch(0x100).correct,
              bare_ledger.branch(0x100).correct);
    EXPECT_GT(hybrid_ledger.accuracyPercent(),
              bare_ledger.accuracyPercent());
}

TEST(BiasHybrid, UnprofiledBranchesGoDynamic)
{
    BiasClassifyingHybrid hybrid(
        {}, std::make_unique<TwoLevel>(TwoLevelConfig::gshare(8)));
    auto trace = workload::periodicTrace(0x300, {true, false}, 500);
    auto result = sim::run(trace, hybrid);
    EXPECT_GT(result.accuracyPercent(), 90.0);
}

TEST(StaticPht, PerfectOnDeterministicPatternItProfiled)
{
    auto trace = workload::periodicTrace(0x100, {true, true, false}, 1000);
    auto pred =
        StaticPhtTwoLevel::profile(trace, TwoLevelConfig::gshare(8));
    auto result = sim::run(trace, pred);
    // No training, no hysteresis: only the first few indices are cold in
    // the profile; on the testing run everything is exact.
    EXPECT_GT(result.accuracyPercent(), 99.5);
}

TEST(StaticPht, BeatsAdaptiveOnShortSameSetRuns)
{
    // Young et al.: with profiling == testing set, the statically
    // determined PHT avoids the 2-bit counters' training losses.
    auto trace = workload::makeBenchmarkTrace("m88ksim", 50000, 0);
    auto static_pred =
        StaticPhtTwoLevel::profile(trace, TwoLevelConfig::gshare(12));
    TwoLevel adaptive(TwoLevelConfig::gshare(12));
    auto rs = sim::run(trace, static_pred);
    auto ra = sim::run(trace, adaptive);
    EXPECT_GT(rs.accuracyPercent() + 0.5, ra.accuracyPercent());
}

TEST(StaticPht, AdaptiveWinsWhenBehaviorShifts)
{
    // Profile on one phase, test on a phase with the opposite bias: the
    // static PHT is stuck with stale directions; counters re-train.
    auto phase1 = workload::biasedTrace(0x100, 0.95, 4000, 1);
    auto phase2 = workload::biasedTrace(0x100, 0.05, 4000, 2);
    auto pred =
        StaticPhtTwoLevel::profile(phase1, TwoLevelConfig::gshare(8));
    TwoLevel adaptive(TwoLevelConfig::gshare(8));
    auto rs = sim::run(phase2, pred);
    auto ra = sim::run(phase2, adaptive);
    EXPECT_GT(ra.accuracyPercent(), rs.accuracyPercent() + 20.0);
}

TEST(StaticPht, CoverageReflectsExercisedIndices)
{
    auto trace = workload::biasedTrace(0x100, 1.0, 100, 1);
    auto pred =
        StaticPhtTwoLevel::profile(trace, TwoLevelConfig::gshare(10));
    // An always-taken branch exercises very few history patterns.
    EXPECT_GT(pred.coverage(), 0.0);
    EXPECT_LT(pred.coverage(), 0.05);
}

TEST(StaticPht, NameMentionsGeometry)
{
    auto trace = workload::biasedTrace(0x100, 1.0, 10, 1);
    auto pred =
        StaticPhtTwoLevel::profile(trace, TwoLevelConfig::gshare(8));
    EXPECT_EQ(pred.name(), "static-pht[gshare(h=8)]");
}

} // namespace
} // namespace copra::predictor
