/**
 * @file
 * Unit tests for branch records, traces, and trace statistics.
 */

#include <gtest/gtest.h>

#include "trace/trace.hpp"
#include "trace/trace_stats.hpp"
#include "workload/patterns.hpp"

namespace copra::trace {
namespace {

BranchRecord
cond(uint64_t pc, bool taken, uint64_t target = 0)
{
    return {pc, target ? target : pc + 64, BranchKind::Conditional, taken};
}

TEST(BranchRecord, KindPredicates)
{
    EXPECT_TRUE(cond(0x100, true).isConditional());
    BranchRecord call{0x100, 0x200, BranchKind::Call, true};
    EXPECT_FALSE(call.isConditional());
}

TEST(BranchRecord, BackwardMeansTargetBeforePc)
{
    BranchRecord loop{0x200, 0x100, BranchKind::Conditional, true};
    EXPECT_TRUE(loop.isBackward());
    BranchRecord fwd{0x100, 0x200, BranchKind::Conditional, true};
    EXPECT_FALSE(fwd.isBackward());
}

TEST(BranchRecord, KindNames)
{
    EXPECT_STREQ(branchKindName(BranchKind::Conditional), "cond");
    EXPECT_STREQ(branchKindName(BranchKind::Jump), "jump");
    EXPECT_STREQ(branchKindName(BranchKind::Call), "call");
    EXPECT_STREQ(branchKindName(BranchKind::Return), "ret");
}

TEST(Trace, AppendTracksConditionalCount)
{
    Trace t("test", 5);
    EXPECT_TRUE(t.empty());
    t.append(cond(0x100, true));
    t.append({0x104, 0x200, BranchKind::Call, true});
    t.append(cond(0x204, false));
    EXPECT_EQ(t.size(), 3u);
    EXPECT_EQ(t.conditionalCount(), 2u);
    EXPECT_EQ(t.name(), "test");
    EXPECT_EQ(t.seed(), 5u);
}

TEST(Trace, IndexingReturnsRecords)
{
    Trace t;
    t.append(cond(0x100, true));
    EXPECT_EQ(t[0].pc, 0x100u);
    EXPECT_TRUE(t[0].taken);
}

TEST(Trace, ClearEmptiesEverything)
{
    Trace t;
    t.append(cond(0x100, true));
    t.clear();
    EXPECT_TRUE(t.empty());
    EXPECT_EQ(t.conditionalCount(), 0u);
}

TEST(Trace, PrefixKeepsInterleavedNonConditionals)
{
    Trace t("p", 1);
    t.append({0x10, 0x20, BranchKind::Call, true});
    t.append(cond(0x20, true));
    t.append({0x24, 0x30, BranchKind::Jump, true});
    t.append(cond(0x30, false));
    t.append(cond(0x34, true));

    Trace two = t.prefix(2);
    EXPECT_EQ(two.conditionalCount(), 2u);
    EXPECT_EQ(two.size(), 4u); // call + cond + jump + cond
    EXPECT_EQ(two.name(), "p");
}

TEST(Trace, PrefixLargerThanTraceCopiesAll)
{
    Trace t;
    t.append(cond(0x100, true));
    Trace copy = t.prefix(1000);
    EXPECT_EQ(copy.size(), 1u);
}

TEST(TraceStats, PerBranchCounts)
{
    Trace t;
    t.append(cond(0x100, true));
    t.append(cond(0x100, true));
    t.append(cond(0x100, false));
    t.append(cond(0x200, false));
    t.append({0x204, 0x300, BranchKind::Jump, true}); // ignored

    TraceStats stats(t);
    EXPECT_EQ(stats.staticBranches(), 2u);
    EXPECT_EQ(stats.dynamicBranches(), 4u);
    EXPECT_EQ(stats.dynamicTaken(), 2u);

    StaticBranchStats b = stats.branch(0x100);
    EXPECT_EQ(b.execs, 3u);
    EXPECT_EQ(b.taken, 2u);
    EXPECT_NEAR(b.takenRate(), 2.0 / 3.0, 1e-12);
    EXPECT_NEAR(b.bias(), 2.0 / 3.0, 1e-12);
    EXPECT_EQ(b.idealStaticCorrect(), 2u);
}

TEST(TraceStats, UnknownBranchIsZero)
{
    Trace t;
    TraceStats stats(t);
    EXPECT_EQ(stats.branch(0xdead).execs, 0u);
}

TEST(TraceStats, BiasOfNotTakenBranch)
{
    Trace t;
    for (int i = 0; i < 99; ++i)
        t.append(cond(0x100, false));
    t.append(cond(0x100, true));
    TraceStats stats(t);
    EXPECT_NEAR(stats.branch(0x100).bias(), 0.99, 1e-12);
    EXPECT_EQ(stats.branch(0x100).idealStaticCorrect(), 99u);
}

TEST(TraceStats, BiasedFractionCountsDynamically)
{
    Trace t;
    // Branch A: 100% biased, 10 execs. Branch B: 50/50, 10 execs.
    for (int i = 0; i < 10; ++i)
        t.append(cond(0x100, true));
    for (int i = 0; i < 5; ++i) {
        t.append(cond(0x200, true));
        t.append(cond(0x200, false));
    }
    TraceStats stats(t);
    EXPECT_NEAR(stats.dynamicFractionWithBiasAbove(0.99), 0.5, 1e-12);
    EXPECT_NEAR(stats.dynamicFractionWithBiasAbove(0.4), 1.0, 1e-12);
}

TEST(TraceStats, IdealStaticCorrectSumsPerBranchMajorities)
{
    Trace t;
    for (int i = 0; i < 3; ++i)
        t.append(cond(0x100, true));
    t.append(cond(0x100, false));
    for (int i = 0; i < 2; ++i)
        t.append(cond(0x200, false));
    TraceStats stats(t);
    EXPECT_EQ(stats.idealStaticCorrect(), 3u + 2u);
}

TEST(TraceStats, HottestSortsByExecsThenPc)
{
    Trace t;
    for (int i = 0; i < 5; ++i)
        t.append(cond(0x300, true));
    for (int i = 0; i < 9; ++i)
        t.append(cond(0x100, true));
    for (int i = 0; i < 5; ++i)
        t.append(cond(0x200, true));

    auto hottest = TraceStats(t).hottest(10);
    ASSERT_EQ(hottest.size(), 3u);
    EXPECT_EQ(hottest[0].pc, 0x100u);
    EXPECT_EQ(hottest[1].pc, 0x200u); // tie broken by pc
    EXPECT_EQ(hottest[2].pc, 0x300u);
}

TEST(TraceStats, HottestTruncates)
{
    Trace t;
    for (uint64_t pc = 0; pc < 20; ++pc)
        t.append(cond(0x100 + pc * 4, true));
    EXPECT_EQ(TraceStats(t).hottest(5).size(), 5u);
}

} // namespace
} // namespace copra::trace
