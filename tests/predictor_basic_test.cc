/**
 * @file
 * Unit tests for static predictors, the bimodal predictor, and the
 * predictor factory.
 */

#include <gtest/gtest.h>

#include "predictor/bimodal.hpp"
#include "predictor/factory.hpp"
#include "predictor/static_pred.hpp"
#include "sim/driver.hpp"
#include "workload/patterns.hpp"

namespace copra::predictor {
namespace {

trace::BranchRecord
cond(uint64_t pc, bool taken = true, uint64_t target = 0)
{
    return {pc, target ? target : pc + 64,
            trace::BranchKind::Conditional, taken};
}

TEST(StaticPredictors, AlwaysTakenAndNotTaken)
{
    AlwaysTaken t;
    AlwaysNotTaken n;
    EXPECT_TRUE(t.predict(cond(0x100)));
    EXPECT_FALSE(n.predict(cond(0x100)));
    // Updates have no effect.
    t.update(cond(0x100), false);
    n.update(cond(0x100), true);
    EXPECT_TRUE(t.predict(cond(0x100)));
    EXPECT_FALSE(n.predict(cond(0x100)));
}

TEST(StaticPredictors, BtfntFollowsDirection)
{
    Btfnt b;
    EXPECT_TRUE(b.predict(cond(0x200, true, 0x100)));  // backward
    EXPECT_FALSE(b.predict(cond(0x100, true, 0x200))); // forward
}

TEST(Bimodal, LearnsABiasedBranch)
{
    Bimodal pred(10);
    auto trace = workload::biasedTrace(0x100, 0.95, 2000, 5);
    auto result = sim::run(trace, pred);
    EXPECT_GT(result.accuracyPercent(), 90.0);
}

TEST(Bimodal, HysteresisSurvivesSingleAnomaly)
{
    Bimodal pred(8);
    for (int i = 0; i < 4; ++i)
        pred.update(cond(0x100), true);
    pred.update(cond(0x100), false); // one not-taken
    EXPECT_TRUE(pred.predict(cond(0x100))); // still predicts taken
}

TEST(Bimodal, AliasingIsReal)
{
    // Two branches 2^bits apart share a counter in a small table.
    Bimodal pred(4);
    uint64_t pc_a = 0x100;
    uint64_t pc_b = 0x100 + (1u << 4) * 4; // same index after >> 2
    for (int i = 0; i < 4; ++i)
        pred.update(cond(pc_a), true);
    EXPECT_TRUE(pred.predict(cond(pc_b)));
    for (int i = 0; i < 4; ++i)
        pred.update(cond(pc_b), false);
    EXPECT_FALSE(pred.predict(cond(pc_a)));
}

TEST(Bimodal, ResetForgets)
{
    Bimodal pred(8);
    for (int i = 0; i < 4; ++i)
        pred.update(cond(0x100), true);
    pred.reset();
    EXPECT_FALSE(pred.predict(cond(0x100))); // back to weakly-not-taken
}

TEST(Bimodal, TableSizeMatchesBits)
{
    EXPECT_EQ(Bimodal(6).tableSize(), 64u);
    EXPECT_EQ(Bimodal(12).tableSize(), 4096u);
}

TEST(Bimodal, NameMentionsGeometry)
{
    EXPECT_EQ(Bimodal(12).name(), "bimodal(12b)");
}

class FactoryNames : public ::testing::TestWithParam<std::string>
{
};

TEST_P(FactoryNames, ConstructsAndRuns)
{
    PredictorPtr pred = makePredictor(GetParam());
    ASSERT_NE(pred, nullptr);
    EXPECT_FALSE(pred->name().empty());
    auto trace = workload::biasedTrace(0x100, 0.9, 500, 3);
    auto result = sim::run(trace, *pred);
    EXPECT_EQ(result.dynamicBranches, 500u);
    pred->reset();
}

INSTANTIATE_TEST_SUITE_P(AllKnown, FactoryNames,
                         ::testing::ValuesIn(knownPredictors()));

TEST(Factory, ParsesParameters)
{
    PredictorPtr gshare = makePredictor("gshare:h=10");
    EXPECT_NE(gshare->name().find("h=10"), std::string::npos);
    PredictorPtr pas = makePredictor("pas:h=8,bht=6,s=2");
    EXPECT_NE(pas->name().find("h=8"), std::string::npos);
    PredictorPtr fixed = makePredictor("fixed:k=7");
    EXPECT_NE(fixed->name().find("7"), std::string::npos);
}

TEST(Factory, HybridInnerSpecs)
{
    PredictorPtr h = makePredictor("hybrid:a=gshare.h=10,b=bimodal.bits=8");
    EXPECT_NE(h->name().find("gshare(h=10)"), std::string::npos);
    EXPECT_NE(h->name().find("bimodal(8b)"), std::string::npos);
}

TEST(FactoryDeath, UnknownNameIsFatal)
{
    EXPECT_EXIT(makePredictor("neuralnet"),
                ::testing::ExitedWithCode(1), "unknown predictor");
}

TEST(FactoryDeath, MalformedParameterIsFatal)
{
    EXPECT_EXIT(makePredictor("gshare:h"), ::testing::ExitedWithCode(1),
                "malformed");
    EXPECT_EXIT(makePredictor("gshare:h=abc"),
                ::testing::ExitedWithCode(1), "not a number");
}

} // namespace
} // namespace copra::predictor
