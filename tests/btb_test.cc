/**
 * @file
 * Unit tests for the finite BTB substrate and the class predictors
 * running over it (the ablation of the paper's perfect-BTB assumption).
 */

#include <gtest/gtest.h>

#include "predictor/block_pattern.hpp"
#include "predictor/btb.hpp"
#include "predictor/loop_predictor.hpp"
#include "sim/driver.hpp"
#include "workload/patterns.hpp"

namespace copra::predictor {
namespace {

TEST(BtbConfig, Describe)
{
    EXPECT_EQ(BtbConfig::perfect().describe(), "perfect");
    EXPECT_EQ(BtbConfig::finite(4, 2).describe(), "16x2");
    EXPECT_TRUE(BtbConfig::perfect().isPerfect());
    EXPECT_FALSE(BtbConfig::finite(4, 2).isPerfect());
    EXPECT_EQ(BtbConfig::finite(4, 2).entries(), 32u);
    EXPECT_EQ(BtbConfig::perfect().entries(), 0u);
}

TEST(BtbTable, PerfectNeverEvicts)
{
    BtbTable<int> table(BtbConfig::perfect());
    for (uint64_t pc = 0; pc < 10000; pc += 4)
        table.access(pc) = static_cast<int>(pc);
    EXPECT_EQ(table.size(), 2500u);
    EXPECT_EQ(table.evictions(), 0u);
    ASSERT_NE(table.find(0x100), nullptr);
    EXPECT_EQ(*table.find(0x100), 0x100);
}

TEST(BtbTable, FindDoesNotAllocate)
{
    BtbTable<int> table(BtbConfig::finite(2, 2));
    EXPECT_EQ(table.find(0x100), nullptr);
    EXPECT_EQ(table.size(), 0u);
    table.access(0x100) = 7;
    const int *found = table.find(0x100);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(*found, 7);
}

TEST(BtbTable, SetSelectionUsesPcBits)
{
    // pcs 0x100 and 0x104 land in different sets of a 4-set table.
    BtbTable<int> table(BtbConfig::finite(2, 1));
    table.access(0x100) = 1;
    table.access(0x104) = 2;
    EXPECT_NE(table.find(0x100), nullptr);
    EXPECT_NE(table.find(0x104), nullptr);
    EXPECT_EQ(table.evictions(), 0u);
}

TEST(BtbTable, LruEvictionWithinSet)
{
    // One set (setBits 0 is not allowed for finite; use 1 set via
    // pcs with equal set index), 2 ways.
    BtbTable<int> table(BtbConfig::finite(1, 2));
    // pcs 0x100, 0x108, 0x110 share set 0 (bit 2 of pc>>2 ... compute:
    // set = (pc>>2) & 1: 0x100>>2=0x40 (even), 0x108>>2=0x42 (even),
    // 0x110>>2=0x44 (even) -> all set 0.
    table.access(0x100) = 1;
    table.access(0x108) = 2;
    table.access(0x100) = 11; // touch A: B becomes LRU
    table.access(0x110) = 3;  // evicts B (0x108)
    EXPECT_EQ(table.evictions(), 1u);
    EXPECT_NE(table.find(0x100), nullptr);
    EXPECT_EQ(table.find(0x108), nullptr);
    EXPECT_NE(table.find(0x110), nullptr);
}

TEST(BtbTable, EvictedEntryRestartsCold)
{
    BtbTable<int> table(BtbConfig::finite(1, 1));
    table.access(0x100) = 42;
    table.access(0x108) = 7;  // evicts 0x100
    EXPECT_EQ(table.access(0x100), 0); // default-constructed again
}

TEST(BtbTable, ClearResetsEverything)
{
    BtbTable<int> table(BtbConfig::finite(1, 1));
    table.access(0x100) = 1;
    table.access(0x108) = 2;
    table.clear();
    EXPECT_EQ(table.size(), 0u);
    EXPECT_EQ(table.evictions(), 0u);
}

TEST(LoopPredictorBtb, PerfectMatchesDefaultExactly)
{
    auto trace = workload::loopTrace(0x100, 7, 200);
    LoopPredictor implicit_perfect;
    LoopPredictor explicit_perfect(BtbConfig::perfect());
    auto a = sim::run(trace, implicit_perfect);
    auto b = sim::run(trace, explicit_perfect);
    EXPECT_EQ(a.correct, b.correct);
}

TEST(LoopPredictorBtb, LargeFiniteBtbIsAsGoodAsPerfect)
{
    auto a = workload::loopTrace(0x100, 5, 200);
    auto b = workload::loopTrace(0x200, 9, 200);
    auto trace = workload::interleave({a, b});
    LoopPredictor perfect;
    LoopPredictor finite(BtbConfig::finite(8, 4)); // 1024 entries
    auto rp = sim::run(trace, perfect);
    auto rf = sim::run(trace, finite);
    EXPECT_EQ(rp.correct, rf.correct);
    EXPECT_EQ(finite.btbEvictions(), 0u);
}

TEST(LoopPredictorBtb, ThrashingBtbDegradesAccuracy)
{
    // Two loop branches forced into the same single-entry set: every
    // access evicts the other branch's trip state, so the finite
    // predictor keeps relearning while the perfect one is exact.
    auto a = workload::loopTrace(0x100, 5, 300);
    auto b = workload::loopTrace(0x108, 9, 300);
    auto trace = workload::interleave({a, b});

    LoopPredictor perfect;
    LoopPredictor tiny(BtbConfig::finite(1, 1));
    auto rp = sim::run(trace, perfect);
    auto rt = sim::run(trace, tiny);
    EXPECT_GT(tiny.btbEvictions(), 100u);
    EXPECT_GT(rp.accuracyPercent(), rt.accuracyPercent() + 5.0);
}

TEST(BlockPatternBtb, FiniteBtbMatchesPerfectWithoutPressure)
{
    auto trace = workload::blockPatternTrace(0x100, 6, 3, 100);
    BlockPatternPredictor perfect;
    BlockPatternPredictor finite(BtbConfig::finite(6, 2));
    auto rp = sim::run(trace, perfect);
    auto rf = sim::run(trace, finite);
    EXPECT_EQ(rp.correct, rf.correct);
}

TEST(BlockPatternBtb, NamesReflectGeometry)
{
    EXPECT_EQ(BlockPatternPredictor().name(), "block-pattern");
    EXPECT_EQ(BlockPatternPredictor(BtbConfig::finite(4, 2)).name(),
              "block-pattern(btb=16x2)");
    EXPECT_EQ(LoopPredictor(BtbConfig::finite(4, 2)).name(),
              "loop(btb=16x2)");
}

} // namespace
} // namespace copra::predictor
