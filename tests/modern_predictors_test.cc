/**
 * @file
 * Property tests for the modern predictor roster: perceptron weight
 * saturation and threshold adaptation, TAGE useful-counter aging
 * invariants, tournament chooser convergence, and the tournament's BTB
 * miss model and return-address stack accounting. Batch/scalar
 * equivalence for all three is covered by predictor_contracts_test
 * (every knownPredictors() spec) and the differential harness.
 */

#include <gtest/gtest.h>

#include "predictor/factory.hpp"
#include "predictor/perceptron.hpp"
#include "predictor/tage.hpp"
#include "predictor/tournament.hpp"
#include "predictor/two_level.hpp"
#include "sim/driver.hpp"
#include "util/rng.hpp"
#include "workload/patterns.hpp"

namespace copra::predictor {
namespace {

trace::BranchRecord
cond(uint64_t pc, bool taken)
{
    return {pc, pc + 64, trace::BranchKind::Conditional, taken};
}

// --- Perceptron ------------------------------------------------------

TEST(Perceptron, WeightsStayInsideRails)
{
    PerceptronConfig config;
    config.tableBits = 6;
    config.numTables = 4;
    config.segmentBits = 5;
    config.weightMin = -8;
    config.weightMax = 7;
    Perceptron pred(config);

    // A fully biased branch drives every consulted weight toward the
    // positive rail; training must clamp there, never wrap.
    for (int i = 0; i < 2000; ++i)
        pred.update(cond(0x100, true), true);
    EXPECT_LE(pred.maxAbsWeight(), 8);
    EXPECT_TRUE(pred.predict(cond(0x100, true)));

    // Anti-saturation: reversing the outcome walks the weights off the
    // rail instead of wrapping to the opposite extreme. After a handful
    // of flipped updates the prediction must not yet have moved (a wrap
    // would flip it instantly), and after many it must follow.
    for (int i = 0; i < 3; ++i)
        pred.update(cond(0x100, true), false);
    EXPECT_TRUE(pred.predict(cond(0x100, true)));
    for (int i = 0; i < 2000; ++i)
        pred.update(cond(0x100, true), false);
    EXPECT_FALSE(pred.predict(cond(0x100, true)));
    EXPECT_LE(pred.maxAbsWeight(), 8);
}

TEST(Perceptron, ThresholdAdaptsTowardEquilibrium)
{
    // The Seznec fit is a negative-feedback loop: at equilibrium the
    // mispredict and correct-but-weak rates balance and theta holds
    // still, so the property to test is convergence from BOTH sides.
    PerceptronConfig config;
    config.thetaCounterSat = 4;

    // Started far too low, a noisy branch mispredicts much more often
    // than it trains weakly: theta must rise.
    config.initialTheta = 1;
    Perceptron low(config);
    sim::run(workload::biasedTrace(0x200, 0.9, 20000, 11), low);
    EXPECT_GT(low.stats().thresholdAdapts, 0u);
    EXPECT_GT(low.theta(), 1);

    // Started far too high on a perfectly predictable branch, warmup is
    // all correct-but-weak updates: theta must fall.
    config.initialTheta = 40;
    Perceptron high(config);
    sim::run(workload::biasedTrace(0x300, 1.0, 20000, 12), high);
    EXPECT_GT(high.stats().thresholdAdapts, 0u);
    EXPECT_LT(high.theta(), 40);
    EXPECT_GE(high.theta(), 1);
}

TEST(Perceptron, LearnsLongCorrelation)
{
    // y's outcome is correlated with x many branches back — the shape
    // perceptrons exploit and small two-level tables cannot.
    auto trace = workload::correlatedPairTrace(0x100, 0x200, 0.5, 0.95,
                                               20000, 5);
    Perceptron pred{{}};
    sim::Ledger ledger;
    sim::run(trace, pred, &ledger);
    EXPECT_GT(100.0 * ledger.branch(0x200).accuracy(), 90.0);
}

// --- TAGE ------------------------------------------------------------

TEST(Tage, UsefulCountersBoundedAndAgedOnSchedule)
{
    TageConfig config;
    config.baseBits = 8;
    config.tableBits = 7;
    config.agingPeriod = 4096;
    Tage pred(config);

    Rng rng(99);
    const unsigned useful_cap = 3; // (1 << usefulBits) - 1
    uint64_t updates = 0;
    for (int i = 0; i < 20000; ++i) {
        uint64_t pc = 0x400 + 4 * (rng.next() % 64);
        bool taken = (pc >> 2) % 3 != 0;
        pred.update(cond(pc, taken), taken);
        ++updates;
        ASSERT_LE(pred.maxUseful(), useful_cap);
        ASSERT_EQ(pred.stats().agingEvents, updates / config.agingPeriod);
    }
    EXPECT_GT(pred.stats().agingEvents, 0u);
}

TEST(Tage, AgingHalvesUsefulSum)
{
    TageConfig config;
    config.agingPeriod = 1'000'000'000; // never fires in this test
    Tage pred(config);

    // Prime: correlated branches give the tagged tables an edge over the
    // base bimodal, accruing useful credit. 50000 pairs = 100000 updates.
    auto trace = workload::correlatedPairTrace(0x100, 0x200, 0.5, 0.9,
                                               50000, 3);
    sim::run(trace, pred);
    uint64_t before = pred.usefulSum();
    ASSERT_GT(before, 4u);

    // A fresh predictor whose period lands one aging event on the very
    // last update sees the identical update stream, then one halving.
    TageConfig aged = config;
    aged.agingPeriod = 100000;
    Tage pred2(aged);
    sim::run(trace, pred2);
    EXPECT_EQ(pred2.stats().agingEvents, 1u);
    EXPECT_LE(pred2.usefulSum(), before / 2);
}

TEST(Tage, AllocatesOnMispredictAndUsesTaggedProvider)
{
    auto trace = workload::correlatedPairTrace(0x100, 0x200, 0.5, 0.9,
                                               20000, 7);
    Tage pred{{}};
    sim::Ledger ledger;
    sim::run(trace, pred, &ledger);
    EXPECT_GT(pred.stats().allocations, 0u);
    EXPECT_GT(pred.stats().providerTagged, 0u);
    // The correlated branch is captured by the tagged tables.
    EXPECT_GT(100.0 * ledger.branch(0x200).accuracy(), 85.0);
}

TEST(Tage, BeatsGshareOnMixedSuiteWorkload)
{
    auto corr = workload::correlatedPairTrace(0x100, 0x200, 0.5, 0.9,
                                              20000, 3);
    auto loop = workload::loopTrace(0x300, 20, 1500);
    auto trace = workload::interleave({corr, loop});
    Tage tage{{}};
    TwoLevel gshare(TwoLevelConfig::gshare(12));
    auto t_res = sim::run(trace, tage);
    auto g_res = sim::run(trace, gshare);
    EXPECT_GE(t_res.accuracyPercent(), g_res.accuracyPercent() - 0.5);
}

// --- Tournament ------------------------------------------------------

TEST(Tournament, ChooserConvergesToPerBranchWinner)
{
    // A heavily biased (bimodal-friendly, local side) branch interleaved
    // with a correlated pair (global side): the chooser must learn to
    // route each to the component that predicts it, approaching the
    // per-branch best of the two.
    auto biased = workload::biasedTrace(0x300, 0.98, 20000, 5);
    auto corr = workload::correlatedPairTrace(0x100, 0x200, 0.5, 0.95,
                                              20000, 9);
    auto trace = workload::interleave({biased, corr});

    TournamentConfig config;
    config.btb = BtbConfig::perfect();
    Tournament tournament(config);
    TwoLevel global(TwoLevelConfig::gshare(config.globalHistory));
    TwoLevel local(TwoLevelConfig::pas(config.localHistory,
                                       config.localBhtBits,
                                       config.localSelectBits));

    auto t_res = sim::run(trace, tournament);
    auto g_res = sim::run(trace, global);
    auto l_res = sim::run(trace, local);

    double best = std::max(g_res.accuracyPercent(),
                           l_res.accuracyPercent());
    EXPECT_GT(t_res.accuracyPercent(), best - 1.0);
    EXPECT_GT(tournament.stats().choseGlobal, 0u);
    EXPECT_GT(tournament.stats().choseLocal, 0u);
    EXPECT_GT(tournament.stats().chooserTrains, 0u);
}

TEST(Tournament, BtbMissSquashesTakenPredictions)
{
    // One-entry BTB, many distinct always-taken branches: nearly every
    // taken prediction hits a cold/evicted entry and is squashed to
    // not-taken, costing accuracy a perfect BTB would keep.
    TournamentConfig tiny;
    tiny.btb = BtbConfig::finite(0, 1);
    TournamentConfig perfect;
    perfect.btb = BtbConfig::perfect();

    trace::Trace trace("btb-pressure");
    Rng rng(17);
    for (int i = 0; i < 20000; ++i)
        trace.append(cond(0x1000 + 4 * (rng.next() % 256), true));

    Tournament finite_pred(tiny);
    Tournament perfect_pred(perfect);
    auto f_res = sim::run(trace, finite_pred);
    auto p_res = sim::run(trace, perfect_pred);

    // A perfect BTB only takes compulsory misses: at most one squash
    // per static branch. The one-entry table conflict-misses constantly.
    EXPECT_LE(perfect_pred.stats().btbMissSquashes, 256u);
    EXPECT_GT(finite_pred.stats().btbMissSquashes,
              4 * perfect_pred.stats().btbMissSquashes);
    EXPECT_LT(f_res.accuracyPercent(), p_res.accuracyPercent());
}

TEST(Tournament, ReturnStackAccountsHitsAndUnderflows)
{
    Tournament pred{{}};
    auto call = [](uint64_t pc) {
        return trace::BranchRecord{pc, 0x9000, trace::BranchKind::Call,
                                   true};
    };
    auto ret = [](uint64_t target) {
        return trace::BranchRecord{0x9100, target, trace::BranchKind::Return,
                                   true};
    };

    // A return with no call on the stack underflows.
    pred.observe(ret(0x5004));
    EXPECT_EQ(pred.stats().returnUnderflows, 1u);

    // Matched call/return: the popped fall-through (pc + 4) hits.
    pred.observe(call(0x5000));
    pred.observe(ret(0x5004));
    EXPECT_EQ(pred.stats().returnsSeen, 2u);
    EXPECT_EQ(pred.stats().returnHits, 1u);

    // Nested calls return in LIFO order.
    pred.observe(call(0x6000));
    pred.observe(call(0x7000));
    pred.observe(ret(0x7004));
    pred.observe(ret(0x6004));
    EXPECT_EQ(pred.stats().returnHits, 3u);
    EXPECT_EQ(pred.stats().returnUnderflows, 1u);
}

TEST(Tournament, ReturnStackDepthIsCircular)
{
    TournamentConfig config;
    config.returnStackDepth = 2;
    Tournament pred(config);
    // Three calls overflow a depth-2 stack: the oldest is overwritten,
    // so the third return (to the clobbered frame) misses.
    pred.observe({0x1000, 0x9000, trace::BranchKind::Call, true});
    pred.observe({0x2000, 0x9000, trace::BranchKind::Call, true});
    pred.observe({0x3000, 0x9000, trace::BranchKind::Call, true});
    pred.observe({0x9100, 0x3004, trace::BranchKind::Return, true});
    pred.observe({0x9100, 0x2004, trace::BranchKind::Return, true});
    pred.observe({0x9100, 0x1004, trace::BranchKind::Return, true});
    EXPECT_EQ(pred.stats().returnsSeen, 3u);
    EXPECT_EQ(pred.stats().returnHits, 2u);
}

// --- Factory wiring --------------------------------------------------

TEST(ModernRoster, FactoryBuildsAllThree)
{
    EXPECT_EQ(makePredictor("tage")->name(), Tage{{}}.name());
    EXPECT_EQ(makePredictor("perceptron")->name(), Perceptron{{}}.name());
    EXPECT_EQ(makePredictor("tournament")->name(), Tournament{{}}.name());
    const auto &known = knownPredictors();
    for (const char *spec : {"tage", "perceptron", "tournament"})
        EXPECT_NE(std::find(known.begin(), known.end(), spec), known.end())
            << spec;
}

TEST(ModernRoster, ResetRestoresInitialPredictions)
{
    for (const char *spec : {"tage", "perceptron", "tournament"}) {
        PredictorPtr pred = makePredictor(spec);
        auto trace = workload::biasedTrace(0x100, 0.0, 2000, 3);
        sim::run(trace, *pred);
        pred->reset();
        PredictorPtr fresh = makePredictor(spec);
        for (int i = 0; i < 32; ++i) {
            trace::BranchRecord br = cond(0x100 + 4 * i, true);
            EXPECT_EQ(pred->predict(br), fresh->predict(br)) << spec;
        }
    }
}

} // namespace
} // namespace copra::predictor
