# Proves the predictor contract layer fails the build *readably* when a
# roster type does not conform: compiles tests/contracts_break.cc with
# -fsyntax-only, requires a nonzero exit AND the contract clause text in
# the diagnostics. Two flavours are compiled — the structural violation
# (default) and the state-contract violation (COPRA_BREAK_STATE_CONTRACT),
# which must additionally name COPRA_STATE_FIELDS in its diagnostic.
# Driven by ctest as `contracts_negative`.
#
# Inputs: -DCXX=<compiler> -DSRC=<repo root>

execute_process(
    COMMAND ${CXX} -std=c++20 -fsyntax-only -I${SRC}/src
            ${SRC}/tests/contracts_break.cc
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)

if(rc EQUAL 0)
    message(FATAL_ERROR
        "contracts_break.cc compiled cleanly; the predictor contract "
        "layer no longer rejects non-conforming types")
endif()

string(FIND "${err}${out}" "copra predictor contract" pos)
if(pos EQUAL -1)
    message(FATAL_ERROR
        "compilation failed but without the readable contract message; "
        "diagnostics were:\n${err}")
endif()

message(STATUS
    "structural violation rejected with a readable diagnostic, as designed")

execute_process(
    COMMAND ${CXX} -std=c++20 -fsyntax-only -I${SRC}/src
            -DCOPRA_BREAK_STATE_CONTRACT
            ${SRC}/tests/contracts_break.cc
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)

if(rc EQUAL 0)
    message(FATAL_ERROR
        "the state-contract violation compiled cleanly; the contract "
        "layer no longer requires the predictor state contract")
endif()

string(FIND "${err}${out}" "copra predictor contract" pos)
if(pos EQUAL -1)
    message(FATAL_ERROR
        "state-contract compilation failed but without the readable "
        "contract message; diagnostics were:\n${err}")
endif()

string(FIND "${err}${out}" "COPRA_STATE_FIELDS" state_pos)
if(state_pos EQUAL -1)
    message(FATAL_ERROR
        "state-contract diagnostic does not name COPRA_STATE_FIELDS; "
        "diagnostics were:\n${err}")
endif()

message(STATUS
    "state-contract violation rejected with a readable diagnostic, "
    "as designed")
