# Proves the predictor contract layer fails the build *readably* when a
# roster type does not conform: compiles tests/contracts_break.cc with
# -fsyntax-only, requires a nonzero exit AND the contract clause text in
# the diagnostics. Driven by ctest as `contracts_negative`.
#
# Inputs: -DCXX=<compiler> -DSRC=<repo root>

execute_process(
    COMMAND ${CXX} -std=c++20 -fsyntax-only -I${SRC}/src
            ${SRC}/tests/contracts_break.cc
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)

if(rc EQUAL 0)
    message(FATAL_ERROR
        "contracts_break.cc compiled cleanly; the predictor contract "
        "layer no longer rejects non-conforming types")
endif()

string(FIND "${err}${out}" "copra predictor contract" pos)
if(pos EQUAL -1)
    message(FATAL_ERROR
        "compilation failed but without the readable contract message; "
        "diagnostics were:\n${err}")
endif()

message(STATUS
    "contract violation rejected with a readable diagnostic, as designed")
