/**
 * @file
 * End-to-end integration tests: the paper's qualitative findings must
 * hold on the synthetic benchmark suite at modest trace lengths.
 */

#include <gtest/gtest.h>

#include "core/experiments.hpp"
#include "predictor/factory.hpp"
#include "sim/driver.hpp"
#include "workload/profiles.hpp"

namespace copra {
namespace {

double
accuracy(const std::string &spec, const trace::Trace &trace)
{
    auto pred = predictor::makePredictor(spec);
    return sim::run(trace, *pred).accuracyPercent();
}

TEST(Integration, BenchmarkHardnessOrderingMatchesPaper)
{
    // go is the hardest benchmark and vortex among the easiest, for
    // every serious predictor (paper Tables 2 and 3).
    auto go = workload::makeBenchmarkTrace("go", 150000, 0);
    auto vortex = workload::makeBenchmarkTrace("vortex", 150000, 0);
    EXPECT_LT(accuracy("gshare", go) + 5.0, accuracy("gshare", vortex));
    EXPECT_LT(accuracy("pas", go) + 5.0, accuracy("pas", vortex));
}

TEST(Integration, InterferenceFreeDominatesOnLargeBenchmarks)
{
    // The IF gap is the paper's central diagnostic: IF-gshare must beat
    // gshare on the branchy benchmarks (gcc, go).
    for (const char *name : {"gcc", "go"}) {
        auto trace = workload::makeBenchmarkTrace(name, 200000, 0);
        EXPECT_GT(accuracy("ifgshare", trace), accuracy("gshare", trace))
            << name;
    }
}

TEST(Integration, HybridBeatsBothComponents)
{
    // McFarling's observation, confirmed by the paper's §5: a hybrid
    // approaches the per-branch best of its components.
    auto trace = workload::makeBenchmarkTrace("ijpeg", 200000, 0);
    double g = accuracy("gshare", trace);
    double p = accuracy("pas", trace);
    double h = accuracy("hybrid", trace);
    EXPECT_GT(h + 0.5, std::max(g, p));
}

TEST(Integration, TwoLevelNeverLosesBadlyToBimodal)
{
    // At short trace lengths two-level predictors are still training
    // (more second-level state to warm up), so bimodal may edge them —
    // on go, whose run-structured data flatters per-branch counters, by
    // ~3 points at 300k branches (the gap closes with trace length). It
    // must never win by more, and on the heavily biased benchmarks the
    // two-level predictors win outright.
    for (const auto &name : workload::benchmarkNames()) {
        auto trace = workload::makeBenchmarkTrace(name, 300000, 0);
        double bimodal = accuracy("bimodal", trace);
        double best_two_level =
            std::max(accuracy("gshare", trace), accuracy("pas", trace));
        EXPECT_GT(best_two_level + 3.5, bimodal) << name;
        if (name == "m88ksim" || name == "vortex")
            EXPECT_GT(best_two_level, bimodal) << name;
    }
}

TEST(Integration, SelectiveHistoryTracksIfGshare)
{
    // Fig. 4's headline: 3 watched branches recover roughly what the
    // full 16-outcome interference-free history provides.
    core::ExperimentConfig config;
    config.branches = 120000;
    config.mineConditionals = 120000;
    core::BenchmarkExperiment experiment("gcc", config);
    core::Fig4Row row = experiment.fig4Row();
    EXPECT_GT(row.selective3, row.ifGshare - 2.5);
    // And one watched branch already lands in a sane band.
    EXPECT_GT(row.selective1, row.gshare - 6.0);
}

TEST(Integration, SelectiveAccuracySaturatesWithDepth)
{
    // Fig. 5: accuracy grows with history depth and flattens; depth 32
    // is never materially worse than depth 8.
    core::ExperimentConfig config;
    config.branches = 60000;
    config.mineConditionals = 60000;
    trace::Trace trace = core::makeExperimentTrace("m88ksim", config);
    auto series = core::fig5Series(trace, config, {8, 16, 32});
    ASSERT_EQ(series.size(), 3u);
    EXPECT_GT(series[2].second, series[0].second - 1.0);
}

TEST(Integration, LoopEnhancementHelpsPas)
{
    // Table 3's point: adding a loop predictor to PAs helps on the
    // loop-heavy benchmark.
    core::ExperimentConfig config;
    config.branches = 150000;
    core::BenchmarkExperiment experiment("ijpeg", config);
    core::Table3Row row = experiment.table3Row();
    EXPECT_GE(row.pasWithLoop, row.pas - 0.1);
}

TEST(Integration, StaticBestBranchesAreMostlyHeavilyBiased)
{
    // Paper §5.1: the overwhelming majority of dynamic executions in
    // the static-best bucket come from >99%-biased branches.
    core::ExperimentConfig config;
    config.branches = 150000;
    core::BenchmarkExperiment experiment("vortex", config);
    core::BestOfSplit split = experiment.fig7Split();
    EXPECT_GT(split.staticBiasedFraction, 0.5);
}

TEST(Integration, Fig9ShowsBothTails)
{
    // §5.2: there are branches where gshare is much better than PAs and
    // branches where PAs is much better than gshare.
    core::ExperimentConfig config;
    config.branches = 200000;
    core::BenchmarkExperiment experiment("gcc", config);
    auto wp = experiment.fig9Percentiles();
    EXPECT_LT(wp.percentile(2), -1.0);
    EXPECT_GT(wp.percentile(98), 1.0);
}

TEST(Integration, FullPipelineIsDeterministic)
{
    core::ExperimentConfig config;
    config.branches = 50000;
    core::BenchmarkExperiment a("perl", config);
    core::BenchmarkExperiment b("perl", config);
    EXPECT_DOUBLE_EQ(a.table2Row().gshareWithCorr,
                     b.table2Row().gshareWithCorr);
    EXPECT_DOUBLE_EQ(a.fig6Row().fractions[0], b.fig6Row().fractions[0]);
}

} // namespace
} // namespace copra
