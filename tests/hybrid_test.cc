/**
 * @file
 * Unit tests for the hybrid (tournament) predictor, the ideal static
 * predictor, and the path-based predictor.
 */

#include <gtest/gtest.h>

#include "predictor/hybrid.hpp"
#include "predictor/ideal_static.hpp"
#include "predictor/path_based.hpp"
#include "predictor/static_pred.hpp"
#include "predictor/two_level.hpp"
#include "sim/driver.hpp"
#include "trace/trace_stats.hpp"
#include "workload/patterns.hpp"

namespace copra::predictor {
namespace {

trace::BranchRecord
cond(uint64_t pc, bool taken, uint64_t target = 0)
{
    return {pc, target ? target : pc + 64,
            trace::BranchKind::Conditional, taken};
}

TEST(Hybrid, ChooserLearnsPerBranchWinner)
{
    // Component A: always-taken; component B: always-not-taken.
    // Branch 0x100 is always taken, branch 0x200 never: the chooser must
    // route each branch to the right component.
    Hybrid hybrid(std::make_unique<AlwaysTaken>(),
                  std::make_unique<AlwaysNotTaken>(), 10);
    auto a = workload::biasedTrace(0x100, 1.0, 500, 1);
    auto b = workload::biasedTrace(0x200, 0.0, 500, 2);
    auto trace = workload::interleave({a, b});
    sim::Ledger ledger;
    sim::run(trace, hybrid, &ledger);
    EXPECT_GT(100.0 * ledger.branch(0x100).accuracy(), 99.0);
    EXPECT_GT(100.0 * ledger.branch(0x200).accuracy(), 98.0);
}

TEST(Hybrid, ApproachesBetterComponentOnMixedWorkload)
{
    // gshare is good at the correlated pair; a loop-only trace favours
    // the per-address side. The hybrid should approach the per-branch
    // max of its components.
    auto corr = workload::correlatedPairTrace(0x100, 0x200, 0.5, 0.9,
                                              5000, 3);
    auto loop = workload::loopTrace(0x300, 20, 600);
    auto trace = workload::interleave({corr, loop});

    auto make_gshare = [] {
        return std::make_unique<TwoLevel>(TwoLevelConfig::gshare(12));
    };
    auto make_pas = [] {
        return std::make_unique<TwoLevel>(TwoLevelConfig::pas(12, 8, 2));
    };

    auto g_res = sim::run(trace, *make_gshare());
    auto p_res = sim::run(trace, *make_pas());
    Hybrid hybrid(make_gshare(), make_pas(), 10);
    auto h_res = sim::run(trace, hybrid);

    double best = std::max(g_res.accuracyPercent(),
                           p_res.accuracyPercent());
    EXPECT_GT(h_res.accuracyPercent(), best - 1.0);
}

TEST(Hybrid, BothComponentsAlwaysTrain)
{
    // After running a taken-only branch, both components predict taken
    // even though the chooser consulted only one of them.
    auto a = std::make_unique<TwoLevel>(TwoLevelConfig::gshare(8));
    auto b = std::make_unique<TwoLevel>(TwoLevelConfig::pas(8, 4, 2));
    TwoLevel *pa = a.get();
    TwoLevel *pb = b.get();
    Hybrid hybrid(std::move(a), std::move(b), 8);
    for (int i = 0; i < 10; ++i) {
        hybrid.predict(cond(0x100, true));
        hybrid.update(cond(0x100, true), true);
    }
    EXPECT_TRUE(pa->predict(cond(0x100, true)));
    EXPECT_TRUE(pb->predict(cond(0x100, true)));
}

TEST(Hybrid, NameCombinesComponents)
{
    Hybrid hybrid(std::make_unique<AlwaysTaken>(),
                  std::make_unique<AlwaysNotTaken>(), 4);
    EXPECT_EQ(hybrid.name(), "hybrid(always-taken,always-not-taken)");
}

TEST(Hybrid, ResetRestoresNeutralChooser)
{
    Hybrid hybrid(std::make_unique<AlwaysTaken>(),
                  std::make_unique<AlwaysNotTaken>(), 4);
    // Train the chooser toward component B on this branch.
    for (int i = 0; i < 8; ++i) {
        hybrid.predict(cond(0x100, false));
        hybrid.update(cond(0x100, false), false);
    }
    EXPECT_FALSE(hybrid.predict(cond(0x100, false)));
    hybrid.reset();
    // Neutral chooser leans to component A (always taken).
    EXPECT_TRUE(hybrid.predict(cond(0x100, false)));
}

TEST(IdealStatic, PredictsMajorityDirection)
{
    trace::Trace t;
    for (int i = 0; i < 7; ++i)
        t.append(cond(0x100, true));
    for (int i = 0; i < 3; ++i)
        t.append(cond(0x100, false));
    for (int i = 0; i < 9; ++i)
        t.append(cond(0x200, false));

    IdealStatic pred = IdealStatic::fromTrace(t);
    EXPECT_EQ(pred.branches(), 2u);
    EXPECT_TRUE(pred.predict(cond(0x100, true)));
    EXPECT_FALSE(pred.predict(cond(0x200, true)));
    // Unprofiled branches default to taken.
    EXPECT_TRUE(pred.predict(cond(0x999, true)));
}

TEST(IdealStatic, AccuracyEqualsPerBranchMajority)
{
    auto trace = workload::biasedTrace(0x100, 0.8, 10000, 7);
    IdealStatic pred = IdealStatic::fromTrace(trace);
    auto result = sim::run(trace, pred);
    trace::TraceStats stats(trace);
    EXPECT_EQ(result.correct, stats.idealStaticCorrect());
}

TEST(IdealStatic, TieGoesToTaken)
{
    trace::Trace t;
    t.append(cond(0x100, true));
    t.append(cond(0x100, false));
    IdealStatic pred = IdealStatic::fromTrace(t);
    EXPECT_TRUE(pred.predict(cond(0x100, false)));
}

TEST(PathBased, LearnsPathDependentBranch)
{
    // The paper's in-path example: reaching X through different paths
    // determines X. Path history separates the contexts even when the
    // outcome history alone might alias them.
    PathBased pred(8, 4, 14);
    auto trace = workload::inPathTrace(0x100, 0.5, 0.5, 0.5, 8000, 13);
    sim::Ledger ledger;
    sim::run(trace, pred, &ledger);
    // Branch X (base + 64) is fully determined by the path.
    EXPECT_GT(100.0 * ledger.branch(0x140).accuracy(), 90.0);
}

TEST(PathBased, ResetForgets)
{
    PathBased pred(4, 2, 10);
    for (int i = 0; i < 8; ++i)
        pred.update(cond(0x100, true), true);
    pred.reset();
    EXPECT_FALSE(pred.predict(cond(0x100, true)));
}

TEST(PathBased, NameMentionsGeometry)
{
    EXPECT_EQ(PathBased(8, 2, 16).name(), "path(8x2b)");
}

TEST(HybridDeath, NullComponentsAreFatal)
{
    EXPECT_EXIT(Hybrid(nullptr, std::make_unique<AlwaysTaken>(), 4),
                ::testing::ExitedWithCode(1), "two components");
}

} // namespace
} // namespace copra::predictor
