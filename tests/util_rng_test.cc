/**
 * @file
 * Unit tests for the deterministic RNG used by workload synthesis.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/rng.hpp"

namespace copra {
namespace {

TEST(Rng, SameSeedSameStream)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanIsHalf)
{
    Rng rng(11);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BernoulliFrequencyTracksProbability)
{
    Rng rng(13);
    for (double p : {0.1, 0.5, 0.9, 0.99}) {
        int hits = 0;
        const int n = 100000;
        for (int i = 0; i < n; ++i)
            if (rng.bernoulli(p))
                ++hits;
        EXPECT_NEAR(static_cast<double>(hits) / n, p, 0.01)
            << "p=" << p;
    }
}

TEST(Rng, RangeIsInclusive)
{
    Rng rng(17);
    std::set<uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        uint64_t v = rng.range(3, 7);
        ASSERT_GE(v, 3u);
        ASSERT_LE(v, 7u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 5u); // all five values appear
}

TEST(Rng, RangeSingleton)
{
    Rng rng(19);
    for (int i = 0; i < 100; ++i)
        ASSERT_EQ(rng.range(5, 5), 5u);
}

TEST(Rng, IndexStaysBelowBound)
{
    Rng rng(23);
    for (int i = 0; i < 1000; ++i)
        ASSERT_LT(rng.index(10), 10u);
}

TEST(Rng, GeometricRespectsBounds)
{
    Rng rng(29);
    for (int i = 0; i < 1000; ++i) {
        uint64_t v = rng.geometric(2, 9, 0.5);
        ASSERT_GE(v, 2u);
        ASSERT_LE(v, 9u);
    }
}

TEST(Rng, ForkProducesIndependentStream)
{
    Rng parent(31);
    Rng child = parent.fork();
    // The child stream differs from the parent's continuing stream.
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (parent.next() == child.next())
            ++same;
    EXPECT_EQ(same, 0);
}

TEST(Rng, ForkIsDeterministic)
{
    Rng a(37), b(37);
    Rng ca = a.fork();
    Rng cb = b.fork();
    for (int i = 0; i < 100; ++i)
        ASSERT_EQ(ca.next(), cb.next());
}

TEST(Mix64, IsDeterministicAndSpreads)
{
    EXPECT_EQ(mix64(1), mix64(1));
    EXPECT_NE(mix64(1), mix64(2));
    // Hamming distance between mixes of adjacent inputs should be large.
    uint64_t x = mix64(100) ^ mix64(101);
    int bits = __builtin_popcountll(x);
    EXPECT_GT(bits, 16);
}

TEST(Splitmix64, AdvancesState)
{
    uint64_t s = 9;
    uint64_t first = splitmix64(s);
    uint64_t second = splitmix64(s);
    EXPECT_NE(first, second);
}

} // namespace
} // namespace copra
