/**
 * @file
 * Unit tests for the command line option parser.
 */

#include <gtest/gtest.h>

#include "util/cli.hpp"

namespace copra {
namespace {

TEST(OptionParser, ParsesEveryType)
{
    int64_t i = 0;
    uint64_t u = 0;
    double d = 0.0;
    std::string s;
    bool f = false;

    OptionParser p("test");
    p.addInt("int", &i, "");
    p.addUint("uint", &u, "");
    p.addDouble("double", &d, "");
    p.addString("string", &s, "");
    p.addFlag("flag", &f, "");

    const char *argv[] = {"prog", "--int", "-5", "--uint", "7",
                          "--double", "2.5", "--string", "hello",
                          "--flag"};
    ASSERT_TRUE(p.parse(10, argv));
    EXPECT_EQ(i, -5);
    EXPECT_EQ(u, 7u);
    EXPECT_DOUBLE_EQ(d, 2.5);
    EXPECT_EQ(s, "hello");
    EXPECT_TRUE(f);
}

TEST(OptionParser, EqualsSyntax)
{
    uint64_t u = 0;
    bool f = true;
    OptionParser p("test");
    p.addUint("n", &u, "");
    p.addFlag("f", &f, "");
    const char *argv[] = {"prog", "--n=123", "--f=false"};
    ASSERT_TRUE(p.parse(3, argv));
    EXPECT_EQ(u, 123u);
    EXPECT_FALSE(f);
}

TEST(OptionParser, DefaultsSurviveWhenUnset)
{
    uint64_t u = 99;
    OptionParser p("test");
    p.addUint("n", &u, "");
    const char *argv[] = {"prog"};
    ASSERT_TRUE(p.parse(1, argv));
    EXPECT_EQ(u, 99u);
}

TEST(OptionParser, HelpReturnsFalse)
{
    OptionParser p("test");
    const char *argv[] = {"prog", "--help"};
    EXPECT_FALSE(p.parse(2, argv));
}

TEST(OptionParserDeath, UnknownOptionIsFatal)
{
    OptionParser p("test");
    const char *argv[] = {"prog", "--bogus", "1"};
    EXPECT_EXIT(p.parse(3, argv), ::testing::ExitedWithCode(1),
                "unknown option");
}

TEST(OptionParserDeath, MissingValueIsFatal)
{
    uint64_t u = 0;
    OptionParser p("test");
    p.addUint("n", &u, "");
    const char *argv[] = {"prog", "--n"};
    EXPECT_EXIT(p.parse(2, argv), ::testing::ExitedWithCode(1),
                "expects a value");
}

TEST(OptionParserDeath, MalformedNumberIsFatal)
{
    uint64_t u = 0;
    OptionParser p("test");
    p.addUint("n", &u, "");
    const char *argv[] = {"prog", "--n", "xyz"};
    EXPECT_EXIT(p.parse(3, argv), ::testing::ExitedWithCode(1),
                "invalid value");
}

TEST(OptionParserDeath, PositionalArgumentRejected)
{
    OptionParser p("test");
    const char *argv[] = {"prog", "stray"};
    EXPECT_EXIT(p.parse(2, argv), ::testing::ExitedWithCode(1),
                "unexpected argument");
}

} // namespace
} // namespace copra
