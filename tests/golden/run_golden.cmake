# Golden-snapshot driver, invoked by ctest as
#   cmake -DBINARY=<bench exe> -DARGS=<semicolon list> -DGOLDEN=<snapshot>
#         -DOUT=<capture path> -DUPDATE=<update script> -P run_golden.cmake
#
# Runs the bench binary with canonical deterministic arguments, captures
# stdout only (timing lines go to stderr by design), and requires the
# capture to be byte-identical to the checked-in snapshot.

foreach(var BINARY ARGS GOLDEN OUT UPDATE)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "run_golden.cmake: missing -D${var}=")
    endif()
endforeach()

execute_process(
    COMMAND ${BINARY} ${ARGS}
    OUTPUT_FILE ${OUT}
    RESULT_VARIABLE run_rc
    ERROR_VARIABLE run_err)
if(NOT run_rc EQUAL 0)
    message(FATAL_ERROR
        "golden: ${BINARY} exited with ${run_rc}\n${run_err}")
endif()

if(NOT EXISTS ${GOLDEN})
    message(FATAL_ERROR
        "golden: snapshot ${GOLDEN} does not exist.\n"
        "Fresh output is at ${OUT}.\n"
        "If this bench is newly golden-tracked, run: ${UPDATE}")
endif()

execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files ${GOLDEN} ${OUT}
    RESULT_VARIABLE diff_rc)
if(NOT diff_rc EQUAL 0)
    find_program(DIFF_TOOL diff)
    if(DIFF_TOOL)
        execute_process(
            COMMAND ${DIFF_TOOL} -u ${GOLDEN} ${OUT}
            OUTPUT_VARIABLE diff_text
            RESULT_VARIABLE ignored)
    else()
        set(diff_text "(no diff tool found; compare the files by hand)")
    endif()
    message(FATAL_ERROR
        "golden: output of ${BINARY} diverged from ${GOLDEN}\n"
        "${diff_text}\n"
        "If the change is intentional, refresh snapshots with:\n"
        "  ${UPDATE} <build-dir>\n"
        "and commit the updated files under tests/golden/.")
endif()
