#!/usr/bin/env bash
# Regenerate the golden bench snapshots under tests/golden/ from a built
# tree. Run after an *intentional* change to bench output, review the
# diff, and commit the updated .txt files.
#
# Usage: tests/golden/update_golden.sh [build-dir]   (default: ./build)
set -euo pipefail

root="$(cd "$(dirname "$0")/../.." && pwd)"
build="${1:-$root/build}"
case "$build" in
    /*) ;;
    *) build="$root/$build" ;;
esac

if [[ ! -d "$build/bench" ]]; then
    echo "error: $build/bench not found (build the project first)" >&2
    exit 1
fi

# Canonical snapshot arguments. Small deterministic traces, cache off so
# nothing is read from or written outside the build tree, --results= so
# no bench_results.json is emitted. Keep in sync with the golden test
# registrations in tests/CMakeLists.txt.
args=(--branches 20000 --mine 20000 --no-trace-cache --results=)

benches=(
    table1_benchmarks
    fig4_selective_history
    fig5_history_length
    fig7_gshare_pas_static
    fig9_gshare_vs_pas
    fig10_modern_roster
    table3_pas_loop
)

for bench in "${benches[@]}"; do
    "$build/bench/$bench" "${args[@]}" > "$root/tests/golden/$bench.txt"
    echo "updated tests/golden/$bench.txt"
done

# Suite fingerprints (copra_characterize) at the same small budget.
"$build/tools/copra_characterize" --all --branches 20000 \
    > "$root/tests/golden/characterize_suite.txt"
echo "updated tests/golden/characterize_suite.txt"
