/**
 * @file
 * Unit tests for the skewed predictor (Seznec 1997, paper ref. [7]) and
 * the gshare misprediction taxonomy.
 */

#include <gtest/gtest.h>

#include "core/mispredict_taxonomy.hpp"
#include "predictor/gskewed.hpp"
#include "predictor/two_level.hpp"
#include "sim/driver.hpp"
#include "util/rng.hpp"
#include "workload/patterns.hpp"
#include "workload/profiles.hpp"

namespace copra {
namespace {

using predictor::GSkewed;
using trace::BranchKind;

trace::BranchRecord
cond(uint64_t pc, bool taken)
{
    return {pc, pc + 64, BranchKind::Conditional, taken};
}

TEST(GSkewed, BanksUseDistinctIndexFunctions)
{
    GSkewed pred(8, 10);
    // The three banks should map a pc to (almost always) different
    // indices; certainly not all equal for many pcs.
    int all_equal = 0;
    for (uint64_t pc = 0x100; pc < 0x100 + 400; pc += 4) {
        size_t a = pred.bankIndex(0, pc);
        size_t b = pred.bankIndex(1, pc);
        size_t c = pred.bankIndex(2, pc);
        if (a == b && b == c)
            ++all_equal;
    }
    EXPECT_EQ(all_equal, 0);
}

TEST(GSkewed, LearnsBiasAndPatterns)
{
    GSkewed pred(12, 12);
    auto biased = workload::biasedTrace(0x100, 0.97, 3000, 5);
    EXPECT_GT(sim::run(biased, pred).accuracyPercent(), 92.0);
    pred.reset();
    auto periodic = workload::periodicTrace(0x200, {true, false}, 2000);
    EXPECT_GT(sim::run(periodic, pred).accuracyPercent(), 95.0);
}

TEST(GSkewed, MajorityVoteOutvotesSingleBankAlias)
{
    // Construct heavy aliasing pressure for a tiny predictor: many
    // opposite-biased branches plus noise. The skewed majority vote
    // must beat a single-bank gshare with the same total storage
    // (3 * 2^7 counters vs 2^9 counters).
    std::vector<trace::Trace> parts;
    for (int b = 0; b < 24; ++b) {
        parts.push_back(workload::biasedTrace(
            0x1000 + 4u * static_cast<unsigned>(b),
            b % 2 ? 0.98 : 0.02, 2000, static_cast<uint64_t>(b) + 3));
    }
    parts.push_back(workload::biasedTrace(0x5000, 0.5, 2000, 99));
    auto trace = workload::interleave(parts);

    GSkewed skewed(9, 7);
    predictor::TwoLevel gshare(predictor::TwoLevelConfig::gshare(9));
    double skewed_acc = sim::run(trace, skewed).accuracyPercent();
    double gshare_acc = sim::run(trace, gshare).accuracyPercent();
    EXPECT_GT(skewed_acc, gshare_acc);
}

TEST(GSkewed, ResetForgets)
{
    GSkewed pred(8, 8);
    for (int i = 0; i < 10; ++i)
        pred.update(cond(0x100, true), true);
    pred.reset();
    EXPECT_FALSE(pred.predict(cond(0x100, true)));
}

TEST(GSkewed, NameMentionsGeometry)
{
    EXPECT_EQ(GSkewed(16, 14).name(), "gskewed(h=16,3x2^14)");
}

TEST(MispredictTaxonomy, CauseNames)
{
    using core::MispredictCause;
    EXPECT_STREQ(core::mispredictCauseName(MispredictCause::Cold),
                 "cold");
    EXPECT_STREQ(
        core::mispredictCauseName(MispredictCause::Interference),
        "interference");
    EXPECT_STREQ(core::mispredictCauseName(MispredictCause::Training),
                 "training");
    EXPECT_STREQ(core::mispredictCauseName(MispredictCause::Noise),
                 "noise");
}

TEST(MispredictTaxonomy, AccuracyMatchesRealGshare)
{
    // The shadowed walk must implement gshare exactly.
    auto trace = workload::makeBenchmarkTrace("compress", 100000, 0);
    auto breakdown = core::classifyMispredicts(trace, 16);
    predictor::TwoLevel gshare(predictor::TwoLevelConfig::gshare(16));
    auto result = sim::run(trace, gshare);
    EXPECT_EQ(breakdown.dynamicBranches, result.dynamicBranches);
    EXPECT_EQ(breakdown.correct, result.correct);
}

TEST(MispredictTaxonomy, CausesPartitionTheMispredicts)
{
    auto trace = workload::makeBenchmarkTrace("gcc", 100000, 0);
    auto breakdown = core::classifyMispredicts(trace, 14);
    uint64_t sum = 0;
    for (uint64_t c : breakdown.byCause)
        sum += c;
    EXPECT_EQ(sum, breakdown.mispredicts());
}

TEST(MispredictTaxonomy, PureNoiseBranchIsMostlyNoise)
{
    auto trace = workload::biasedTrace(0x100, 0.5, 20000, 7);
    auto breakdown = core::classifyMispredicts(trace, 10);
    using core::MispredictCause;
    // A lone coin-flip branch has no interference; its mispredictions
    // are noise (deviations from each context's majority) plus training.
    EXPECT_DOUBLE_EQ(
        breakdown.causeFraction(MispredictCause::Interference) +
            breakdown.causeFraction(MispredictCause::Cold) +
            breakdown.causeFraction(MispredictCause::Training) +
            breakdown.causeFraction(MispredictCause::Noise),
        1.0);
    EXPECT_GT(breakdown.causeFraction(MispredictCause::Noise), 0.4);
    EXPECT_LT(breakdown.causeFraction(MispredictCause::Interference),
              0.05);
}

TEST(MispredictTaxonomy, AliasedBranchesShowInterference)
{
    // Opposite-biased branches thrashing a 16-entry PHT via noisy
    // histories: interference must be a visible cause.
    std::vector<trace::Trace> parts;
    parts.push_back(workload::biasedTrace(0x100, 1.0, 5000, 1));
    parts.push_back(workload::biasedTrace(0x204, 0.5, 5000, 2));
    parts.push_back(workload::biasedTrace(0x140, 0.0, 5000, 3));
    auto trace = workload::interleave(parts);
    // With a 2-bit history the pattern preceding A (noise, B=0) and the
    // pattern preceding B (A=1, noise) overlap at "10", where the
    // opposite-biased branches thrash one shared counter.
    auto breakdown = core::classifyMispredicts(trace, 2);
    EXPECT_GT(breakdown.causeFraction(
                  core::MispredictCause::Interference),
              0.15);
}

TEST(MispredictTaxonomy, DeterministicBranchHasOnlyWarmupLosses)
{
    auto trace = workload::periodicTrace(0x100, {true, true, false},
                                         5000);
    auto breakdown = core::classifyMispredicts(trace, 12);
    // A fully deterministic pattern: after warmup, zero mispredicts;
    // every loss is cold or training, none is noise.
    EXPECT_GT(breakdown.accuracyPercent(), 99.0);
    EXPECT_EQ(breakdown.byCause[static_cast<size_t>(
                  core::MispredictCause::Noise)],
              0u);
}

} // namespace
} // namespace copra
