/**
 * @file
 * Property sweep over two-level geometries: behavioural invariants that
 * must hold for every (scope × index × history length) combination, and
 * golden determinism checks that pin the synthetic workloads so a
 * refactor cannot silently change the traces the whole evaluation rests
 * on.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "predictor/two_level.hpp"
#include "sim/driver.hpp"
#include "util/rng.hpp"
#include "workload/patterns.hpp"
#include "workload/profiles.hpp"

namespace copra {
namespace {

using predictor::TwoLevel;
using predictor::TwoLevelConfig;

struct Geometry
{
    TwoLevelConfig::Scope scope;
    TwoLevelConfig::Index index;
    unsigned history;

    std::string
    label() const
    {
        std::string s = scope == TwoLevelConfig::Scope::Global ? "G" : "P";
        switch (index) {
          case TwoLevelConfig::Index::HistoryOnly:
            s += "Ag";
            break;
          case TwoLevelConfig::Index::Concat:
            s += "As";
            break;
          case TwoLevelConfig::Index::Xor:
            s += "xor";
            break;
        }
        return s + "_h" + std::to_string(history);
    }
};

TwoLevelConfig
configOf(const Geometry &g)
{
    TwoLevelConfig c;
    c.scope = g.scope;
    c.index = g.index;
    c.historyBits = g.history;
    c.bhtBits = 8;
    c.pcSelectBits = 3;
    c.phtBits = g.history + (g.index == TwoLevelConfig::Index::Concat
                                 ? c.pcSelectBits : 0);
    c.label = g.label();
    return c;
}

std::vector<Geometry>
allGeometries()
{
    std::vector<Geometry> out;
    for (auto scope : {TwoLevelConfig::Scope::Global,
                       TwoLevelConfig::Scope::PerAddress}) {
        for (auto index : {TwoLevelConfig::Index::HistoryOnly,
                           TwoLevelConfig::Index::Concat,
                           TwoLevelConfig::Index::Xor}) {
            for (unsigned h : {4u, 8u, 12u, 16u})
                out.push_back({scope, index, h});
        }
    }
    return out;
}

class GeometrySweep : public ::testing::TestWithParam<Geometry>
{
};

TEST_P(GeometrySweep, LearnsAlternation)
{
    // Any two-level geometry captures a period-2 branch.
    TwoLevel pred(configOf(GetParam()));
    auto trace = workload::periodicTrace(0x100, {true, false}, 1000);
    EXPECT_GT(sim::run(trace, pred).accuracyPercent(), 95.0);
}

TEST_P(GeometrySweep, LearnsStrongBias)
{
    TwoLevel pred(configOf(GetParam()));
    auto trace = workload::biasedTrace(0x100, 0.99, 5000, 3);
    EXPECT_GT(sim::run(trace, pred).accuracyPercent(), 95.0);
}

TEST_P(GeometrySweep, PerfectOnLoopWithinHistory)
{
    // A fixed loop whose full period fits in the history is fully
    // predictable for every geometry.
    Geometry g = GetParam();
    TwoLevel pred(configOf(g));
    auto trace = workload::loopTrace(0x100, g.history, 4000 / g.history);
    EXPECT_GT(sim::run(trace, pred).accuracyPercent(), 96.0)
        << g.label();
}

TEST_P(GeometrySweep, DeterministicAndResettable)
{
    auto trace = workload::biasedTrace(0x104, 0.7, 2000, 9);
    TwoLevel a(configOf(GetParam()));
    TwoLevel b(configOf(GetParam()));
    uint64_t ra = sim::run(trace, a).correct;
    EXPECT_EQ(ra, sim::run(trace, b).correct);
    a.reset();
    EXPECT_EQ(ra, sim::run(trace, a).correct);
}

INSTANTIATE_TEST_SUITE_P(AllGeometries, GeometrySweep,
                         ::testing::ValuesIn(allGeometries()),
                         [](const ::testing::TestParamInfo<Geometry> &i) {
                             return i.param.label();
                         });

/**
 * Golden workload pins: a cheap structural fingerprint of each
 * benchmark's first 20k branches. If any of these change, every number
 * in EXPERIMENTS.md silently shifts — fail loudly instead. Update the
 * constants deliberately when the workload engine changes by design.
 */
uint64_t
fingerprint(const trace::Trace &t)
{
    uint64_t h = 0;
    for (const auto &rec : t.records()) {
        uint64_t x = rec.pc ^ (rec.target << 1) ^
            (static_cast<uint64_t>(rec.kind) << 62) ^
            (rec.taken ? 0x8000000000000000ull : 0);
        h = mix64(h ^ x);
    }
    return h;
}

TEST(GoldenWorkloads, FingerprintsAreStable)
{
    // Self-consistency: generating twice gives the same fingerprint.
    for (const auto &name : workload::benchmarkNames()) {
        auto a = workload::makeBenchmarkTrace(name, 20000, 0);
        auto b = workload::makeBenchmarkTrace(name, 20000, 0);
        EXPECT_EQ(fingerprint(a), fingerprint(b)) << name;
    }
}

TEST(GoldenWorkloads, SuiteMembersAreDistinct)
{
    std::vector<uint64_t> prints;
    for (const auto &name : workload::benchmarkNames())
        prints.push_back(
            fingerprint(workload::makeBenchmarkTrace(name, 5000, 0)));
    std::sort(prints.begin(), prints.end());
    EXPECT_EQ(std::unique(prints.begin(), prints.end()), prints.end());
}

TEST(GoldenWorkloads, SeedChangesOutcomesNotStructure)
{
    auto a = workload::makeBenchmarkTrace("m88ksim", 10000, 1);
    auto b = workload::makeBenchmarkTrace("m88ksim", 10000, 2);
    EXPECT_NE(fingerprint(a), fingerprint(b));
    // Same static branch sites in both (structure is seed-independent);
    // compare the sets of pcs.
    std::set<uint64_t> pcs_a, pcs_b;
    for (const auto &rec : a.records())
        if (rec.isConditional())
            pcs_a.insert(rec.pc);
    for (const auto &rec : b.records())
        if (rec.isConditional())
            pcs_b.insert(rec.pc);
    // Different outcomes reach different sites, so require heavy overlap
    // rather than equality.
    std::vector<uint64_t> common;
    std::set_intersection(pcs_a.begin(), pcs_a.end(), pcs_b.begin(),
                          pcs_b.end(), std::back_inserter(common));
    EXPECT_GT(common.size() * 10, pcs_a.size() * 7);
}

} // namespace
} // namespace copra
