/**
 * @file
 * Unit tests for the on-disk trace cache: hit, miss, corrupt-file and
 * version-mismatch paths, atomic stores, and the global toggle used by
 * makeExperimentTrace.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "check/fuzz.hpp"
#include "core/experiments.hpp"
#include "trace/trace_cache.hpp"
#include "trace/trace_io.hpp"

namespace copra::trace {
namespace {

namespace fs = std::filesystem;

class TraceCacheTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = fs::path(::testing::TempDir()) /
            ("copra-cache-" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name()));
        fs::remove_all(dir_);
    }

    void TearDown() override { fs::remove_all(dir_); }

    Trace
    sampleTrace(const std::string &name, uint64_t seed)
    {
        Trace t(name, seed);
        t.append({0x100, 0x180, BranchKind::Conditional, true});
        t.append({0x104, 0x200, BranchKind::Call, true});
        t.append({0x204, 0x108, BranchKind::Return, true});
        t.append({0x108, 0x090, BranchKind::Conditional, false});
        return t;
    }

    fs::path dir_;
};

TEST_F(TraceCacheTest, KeyFileNameEncodesAllComponents)
{
    TraceCacheKey key{"gcc", 2000000, 7};
    std::string file = key.fileName();
    EXPECT_EQ(file, "gcc-b2000000-s7-v" +
                  std::to_string(kTraceFormatVersion) + ".trc");

    // Hostile names cannot escape the cache directory.
    TraceCacheKey weird{"../evil/name", 1, 2};
    EXPECT_EQ(weird.fileName().find('/'), std::string::npos);
}

TEST_F(TraceCacheTest, MissThenStoreThenHit)
{
    TraceCache cache(dir_.string());
    TraceCacheKey key{"sample", 4, 1};

    EXPECT_FALSE(cache.load(key).has_value());

    Trace original = sampleTrace("sample", 1);
    ASSERT_TRUE(cache.store(key, original));
    EXPECT_TRUE(fs::exists(cache.pathFor(key)));

    auto loaded = cache.load(key);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(loaded->name(), original.name());
    EXPECT_EQ(loaded->seed(), original.seed());
    ASSERT_EQ(loaded->size(), original.size());
    for (size_t i = 0; i < original.size(); ++i)
        EXPECT_EQ((*loaded)[i], original[i]) << "record " << i;
}

TEST_F(TraceCacheTest, LoadOrGenerateCallsGeneratorOnlyOnMiss)
{
    TraceCache cache(dir_.string());
    TraceCacheKey key{"sample", 4, 1};
    int generations = 0;
    auto generate = [&]() {
        ++generations;
        return sampleTrace("sample", 1);
    };

    Trace first = cache.loadOrGenerate(key, generate);
    EXPECT_EQ(generations, 1);
    Trace second = cache.loadOrGenerate(key, generate);
    EXPECT_EQ(generations, 1) << "second call must be a cache hit";
    EXPECT_EQ(second.size(), first.size());
}

TEST_F(TraceCacheTest, CorruptEntryIsDroppedAndRegenerated)
{
    TraceCache cache(dir_.string());
    TraceCacheKey key{"sample", 4, 1};
    ASSERT_TRUE(cache.store(key, sampleTrace("sample", 1)));

    // Truncate the entry mid-record.
    {
        std::ofstream out(cache.pathFor(key),
                          std::ios::binary | std::ios::trunc);
        out << "COPRATRC garbage";
    }

    EXPECT_FALSE(cache.load(key).has_value());
    EXPECT_FALSE(fs::exists(cache.pathFor(key)))
        << "corrupt entry must be deleted";

    int generations = 0;
    Trace regenerated = cache.loadOrGenerate(key, [&]() {
        ++generations;
        return sampleTrace("sample", 1);
    });
    EXPECT_EQ(generations, 1);
    EXPECT_EQ(regenerated.size(), 4u);
    EXPECT_TRUE(cache.load(key).has_value());
}

TEST_F(TraceCacheTest, MalformedHeaderVariantsAreDroppedAndDeleted)
{
    TraceCache cache(dir_.string());
    TraceCacheKey key{"sample", 4, 1};

    // Each mutation damages a different header field; every one must be
    // treated as a miss AND remove the bad file, not just truncations.
    struct Variant
    {
        const char *what;
        void (*mutate)(std::string &);
    };
    const Variant variants[] = {
        {"bad magic byte",
         [](std::string &b) { b[3] ^= 0x20; }},
        {"implausible name length",
         [](std::string &b) {
             // v2 name_len field lives at offset 12..15 (little-endian).
             b[12] = b[13] = b[14] = b[15] = char(0xff);
         }},
        {"inflated record count",
         [](std::string &b) {
             // count is the u64 at header offset 24..31.
             b[24 + 7] = char(0x7f);
         }},
        {"poisoned record kind",
         [](std::string &b) {
             // First kind byte of the 4-record column payload:
             // header(48, incl. checksum) + padded name(8) +
             // pc column(32) + target column(32).
             b[48 + 8 + 32 + 32] = char(0x3f);
         }},
    };

    for (const Variant &variant : variants) {
        ASSERT_TRUE(cache.store(key, sampleTrace("sample", 1)));
        std::string path = cache.pathFor(key);
        std::string bytes;
        {
            std::ifstream in(path, std::ios::binary);
            std::ostringstream slurp;
            slurp << in.rdbuf();
            bytes = slurp.str();
        }
        variant.mutate(bytes);
        {
            std::ofstream out(path, std::ios::binary | std::ios::trunc);
            out.write(bytes.data(),
                      static_cast<std::streamsize>(bytes.size()));
        }
        EXPECT_FALSE(cache.load(key).has_value()) << variant.what;
        EXPECT_FALSE(fs::exists(path))
            << variant.what << ": malformed entry must be deleted";
    }
}

TEST_F(TraceCacheTest, FuzzedCorruptionsNeverYieldMislabeledTraces)
{
    TraceCache cache(dir_.string());
    TraceCacheKey key{"sample", 4, 1};
    Trace original = sampleTrace("sample", 1);
    std::string clean;
    {
        std::ostringstream os;
        writeBinary(original, os);
        clean = os.str();
    }

    // Whatever the mutation does, load() must either miss (deleting the
    // bad entry) or hand back a trace still labeled for this key — a
    // silently mislabeled or torn result is the one forbidden outcome.
    for (uint64_t seed = 0; seed < 200; ++seed) {
        std::string corrupted = check::corruptBytes(clean, seed);
        std::string path = cache.pathFor(key);
        fs::create_directories(dir_);
        {
            std::ofstream out(path, std::ios::binary | std::ios::trunc);
            out.write(corrupted.data(),
                      static_cast<std::streamsize>(corrupted.size()));
        }
        auto loaded = cache.load(key);
        if (loaded.has_value()) {
            EXPECT_EQ(loaded->name(), "sample") << "seed " << seed;
        } else {
            EXPECT_FALSE(fs::exists(path))
                << "seed " << seed << ": dropped entry must be deleted";
        }
    }
}

TEST_F(TraceCacheTest, VersionMismatchIsTreatedAsMiss)
{
    TraceCache cache(dir_.string());
    TraceCacheKey key{"sample", 4, 1};
    ASSERT_TRUE(cache.store(key, sampleTrace("sample", 1)));

    // Patch the format version field (bytes 8..11, little-endian) to a
    // future version, as if a newer copra had written this entry under
    // the same name.
    std::string path = cache.pathFor(key);
    {
        std::fstream f(path,
                       std::ios::binary | std::ios::in | std::ios::out);
        ASSERT_TRUE(f.good());
        f.seekp(8);
        uint32_t bogus = 999;
        char bytes[4];
        for (int i = 0; i < 4; ++i)
            bytes[i] = static_cast<char>((bogus >> (8 * i)) & 0xff);
        f.write(bytes, 4);
    }

    EXPECT_FALSE(cache.load(key).has_value());
    EXPECT_FALSE(fs::exists(path)) << "mismatched entry must be deleted";
}

TEST_F(TraceCacheTest, MislabeledEntryIsDropped)
{
    TraceCache cache(dir_.string());
    TraceCacheKey key{"sample", 4, 1};
    // A trace whose embedded name disagrees with the key (e.g. a file
    // copied between cache directories by hand).
    ASSERT_TRUE(cache.store(key, sampleTrace("other", 1)));
    EXPECT_FALSE(cache.load(key).has_value());
}

TEST_F(TraceCacheTest, VersionBumpChangesEntryName)
{
    TraceCacheKey key{"sample", 4, 1};
    std::string file = key.fileName();
    EXPECT_NE(file.find("-v" + std::to_string(kTraceFormatVersion) +
                        ".trc"),
              std::string::npos)
        << "cache entries must be keyed on the trace format version";
}

TEST_F(TraceCacheTest, MakeExperimentTraceUsesCacheOnlyWhenEnabled)
{
    // Point the global cache at a private directory for this test.
    ASSERT_FALSE(traceCacheEnabled())
        << "trace cache must default to off for library users";

    core::ExperimentConfig config;
    config.branches = 2000;

    // Disabled: no cache directory appears.
    trace::Trace direct = core::makeExperimentTrace("compress", config);
    EXPECT_GT(direct.size(), 0u);

    // Enabled: entry is written and the second build hits it, yielding
    // the identical trace.
    setTraceCacheEnabled(true);
    trace::Trace first = core::makeExperimentTrace("compress", config);
    trace::Trace second = core::makeExperimentTrace("compress", config);
    setTraceCacheEnabled(false);

    TraceCacheKey key{"compress", config.branches, config.seed};
    EXPECT_TRUE(fs::exists(globalTraceCache().pathFor(key)));
    ASSERT_EQ(first.size(), second.size());
    ASSERT_EQ(first.size(), direct.size());
    for (size_t i = 0; i < first.size(); ++i) {
        EXPECT_EQ(first[i], second[i]);
        EXPECT_EQ(first[i], direct[i]);
    }
    fs::remove(globalTraceCache().pathFor(key));
}

} // namespace
} // namespace copra::trace
